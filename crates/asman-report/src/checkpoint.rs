//! Checkpoint artifact I/O for the `repro` driver.
//!
//! The cluster layer owns checkpoint *semantics* (capture, validate,
//! authoritative apply — see `asman_cluster::checkpoint`); this module
//! owns the *files*: `CKPT_<epoch>.json` naming, pretty-printed JSON
//! rendering, and parse-with-context on the way back in. Keeping file
//! I/O here means the cluster crate stays filesystem-free and every
//! artifact the driver writes goes through the same vendored
//! `serde_json` path as the reports and traces.

use asman_cluster::Checkpoint;
use std::path::{Path, PathBuf};

/// Canonical file name of the checkpoint taken at `epoch`:
/// `CKPT_000000500.json`. Zero-padded to nine digits so lexicographic
/// directory order is epoch order for every horizon the driver can run
/// (the old six-digit width broke ordering at epoch 1,000,000 — a
/// horizon the soak target reaches ten times over).
pub fn ckpt_filename(epoch: u64) -> String {
    format!("CKPT_{epoch:09}.json")
}

/// Parse the epoch out of a checkpoint file name. Accepts both the
/// current nine-digit width and the legacy six-digit width (artifacts
/// written by older builds), plus any unpadded overflow the old format
/// produced past 999,999 — discovery is numeric, never lexicographic.
pub fn ckpt_epoch(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("CKPT_")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Find the newest checkpoint in `dir` by *numeric* epoch, across both
/// filename widths. `--resume DIR` uses this so a kill-and-resume
/// workflow never has to name the exact artifact.
pub fn latest_checkpoint(dir: &Path) -> Result<PathBuf, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(epoch) = name.to_str().and_then(ckpt_epoch) else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| epoch > *b) {
            best = Some((epoch, entry.path()));
        }
    }
    best.map(|(_, p)| p)
        .ok_or_else(|| format!("no CKPT_<epoch>.json artifacts in {}", dir.display()))
}

/// Write `ck` into `dir` under its canonical name, creating the
/// directory if needed. Returns the written path.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(ckpt_filename(ck.state.epoch));
    let json = serde_json::to_vec_pretty(&ck.to_value()).expect("serialize checkpoint");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Read and decode a checkpoint, with the path and the failing field
/// in every error message (missing file, malformed JSON, wrong kind,
/// unsupported version, schema drift).
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = serde_json::from_str(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Checkpoint::from_value(&v).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_cluster::{
        scenario::ConsolidationSpec, CheckpointConfig, ChurnPlan, ClusterConfig, Policy,
    };
    use asman_sim::FaultPlan;

    fn config() -> CheckpointConfig {
        let d = ClusterConfig::default();
        CheckpointConfig {
            scenario: ConsolidationSpec::default(),
            epoch_ms: d.epoch_ms,
            epochs: 6,
            policy: Policy::VcrdAware,
            cooldown_epochs: d.cooldown_epochs,
            retry_cap: d.retry_cap,
            audit_every: d.audit_every,
            model: d.model,
            faults: FaultPlan::empty(),
            churn: ChurnPlan::empty(),
            slot_reuse: false,
            series_capacity: 0,
            max_moves: 1,
        }
    }

    #[test]
    fn write_then_read_round_trips_bytes_and_state() {
        let mut c = config().build_cluster(1);
        for _ in 0..4 {
            c.run_epoch();
        }
        let ck = Checkpoint::capture(&c, config());
        let dir = std::env::temp_dir().join("asman-ckpt-io-test");
        let path = write_checkpoint(&dir, &ck).expect("write");
        assert!(path.ends_with("CKPT_000000004.json"));
        let back = read_checkpoint(&path).expect("read");
        assert_eq!(back.state, ck.state);
        assert_eq!(back.digest, ck.digest);
        assert!(back.validate(&c).is_empty());
        // A second write produces identical bytes — checkpoints of the
        // same state are reproducible artifacts, diffable with `diff -r`.
        let first = std::fs::read(&path).expect("read bytes");
        write_checkpoint(&dir, &ck).expect("rewrite");
        assert_eq!(first, std::fs::read(&path).expect("reread bytes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_errors_name_the_path_and_problem() {
        let err = read_checkpoint(Path::new("/nonexistent/CKPT_000001.json")).unwrap_err();
        assert!(err.contains("cannot read"), "got {err}");
        assert!(err.contains("CKPT_000001.json"), "got {err}");
        let dir = std::env::temp_dir().join("asman-ckpt-io-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        assert!(read_checkpoint(&bad).is_err());
        std::fs::write(&bad, "{\"kind\": \"other\", \"version\": 1}").unwrap();
        let err = read_checkpoint(&bad).unwrap_err();
        assert!(err.contains("not a checkpoint"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The regression the nine-digit width fixes: at the 999,999 →
    /// 1,000,000 boundary the six-digit format's lexicographic order
    /// inverted (`CKPT_1000000.json` < `CKPT_999999.json` as strings),
    /// so any directory-order consumer resumed from the wrong artifact.
    /// Numeric discovery must pick the million-epoch checkpoint in a
    /// directory holding both widths.
    #[test]
    fn filename_ordering_survives_the_million_epoch_boundary() {
        assert_eq!(ckpt_filename(999_999), "CKPT_000999999.json");
        assert_eq!(ckpt_filename(1_000_000), "CKPT_001000000.json");
        assert!(ckpt_filename(999_999) < ckpt_filename(1_000_000));
        // The old width, for contrast: lexicographic order inverts.
        assert!("CKPT_1000000.json" < "CKPT_999999.json");

        assert_eq!(ckpt_epoch("CKPT_000999999.json"), Some(999_999));
        assert_eq!(ckpt_epoch("CKPT_999999.json"), Some(999_999));
        assert_eq!(ckpt_epoch("CKPT_1000000.json"), Some(1_000_000));
        assert_eq!(ckpt_epoch("CKPT_x.json"), None);
        assert_eq!(ckpt_epoch("SOAK_report.json"), None);

        let dir = std::env::temp_dir().join("asman-ckpt-io-boundary");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["CKPT_999999.json", "CKPT_1000000.json", "CKPT_000000500.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        std::fs::write(dir.join("SOAK_report.json"), "{}").unwrap();
        let latest = latest_checkpoint(&dir).expect("discover");
        assert!(
            latest.ends_with("CKPT_1000000.json"),
            "numeric discovery must beat lexicographic: got {}",
            latest.display()
        );
        let _ = std::fs::remove_dir_all(&dir);
        let err = latest_checkpoint(&dir).unwrap_err();
        assert!(err.contains("cannot read"), "got {err}");
    }
}
