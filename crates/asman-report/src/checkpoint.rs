//! Checkpoint artifact I/O for the `repro` driver.
//!
//! The cluster layer owns checkpoint *semantics* (capture, validate,
//! authoritative apply — see `asman_cluster::checkpoint`); this module
//! owns the *files*: `CKPT_<epoch>.json` naming, pretty-printed JSON
//! rendering, and parse-with-context on the way back in. Keeping file
//! I/O here means the cluster crate stays filesystem-free and every
//! artifact the driver writes goes through the same vendored
//! `serde_json` path as the reports and traces.

use asman_cluster::Checkpoint;
use std::path::{Path, PathBuf};

/// Canonical file name of the checkpoint taken at `epoch`:
/// `CKPT_000500.json`. Zero-padded so lexicographic directory order is
/// epoch order.
pub fn ckpt_filename(epoch: u64) -> String {
    format!("CKPT_{epoch:06}.json")
}

/// Write `ck` into `dir` under its canonical name, creating the
/// directory if needed. Returns the written path.
pub fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(ckpt_filename(ck.state.epoch));
    let json = serde_json::to_vec_pretty(&ck.to_value()).expect("serialize checkpoint");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Read and decode a checkpoint, with the path and the failing field
/// in every error message (missing file, malformed JSON, wrong kind,
/// unsupported version, schema drift).
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = serde_json::from_str(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Checkpoint::from_value(&v).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_cluster::{
        scenario::ConsolidationSpec, CheckpointConfig, ChurnPlan, ClusterConfig, Policy,
    };
    use asman_sim::FaultPlan;

    fn config() -> CheckpointConfig {
        let d = ClusterConfig::default();
        CheckpointConfig {
            scenario: ConsolidationSpec::default(),
            epoch_ms: d.epoch_ms,
            epochs: 6,
            policy: Policy::VcrdAware,
            cooldown_epochs: d.cooldown_epochs,
            retry_cap: d.retry_cap,
            audit_every: d.audit_every,
            model: d.model,
            faults: FaultPlan::empty(),
            churn: ChurnPlan::empty(),
            slot_reuse: false,
            series_capacity: 0,
        }
    }

    #[test]
    fn write_then_read_round_trips_bytes_and_state() {
        let mut c = config().build_cluster(1);
        for _ in 0..4 {
            c.run_epoch();
        }
        let ck = Checkpoint::capture(&c, config());
        let dir = std::env::temp_dir().join("asman-ckpt-io-test");
        let path = write_checkpoint(&dir, &ck).expect("write");
        assert!(path.ends_with("CKPT_000004.json"));
        let back = read_checkpoint(&path).expect("read");
        assert_eq!(back.state, ck.state);
        assert_eq!(back.digest, ck.digest);
        assert!(back.validate(&c).is_empty());
        // A second write produces identical bytes — checkpoints of the
        // same state are reproducible artifacts, diffable with `diff -r`.
        let first = std::fs::read(&path).expect("read bytes");
        write_checkpoint(&dir, &ck).expect("rewrite");
        assert_eq!(first, std::fs::read(&path).expect("reread bytes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_errors_name_the_path_and_problem() {
        let err = read_checkpoint(Path::new("/nonexistent/CKPT_000001.json")).unwrap_err();
        assert!(err.contains("cannot read"), "got {err}");
        assert!(err.contains("CKPT_000001.json"), "got {err}");
        let dir = std::env::temp_dir().join("asman-ckpt-io-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        assert!(read_checkpoint(&bad).is_err());
        std::fs::write(&bad, "{\"kind\": \"other\", \"version\": 1}").unwrap();
        let err = read_checkpoint(&bad).unwrap_err();
        assert!(err.contains("not a checkpoint"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
