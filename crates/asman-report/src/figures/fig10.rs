//! Figure 10: SPECjbb2005 throughput in V1 for 1..=8 warehouses at
//! 66.7/40/22.2% online rates under Credit and ASMan, plus the SPECjbb
//! score (panel (d)).

use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::jbb::{JbbPoint, JbbScenario};
use crate::scenario::Sched;

/// One rate panel: throughput curves for both schedulers.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Panel {
    /// Online rate, percent.
    pub rate_pct: f64,
    /// Credit throughput per warehouse count.
    pub credit: Vec<JbbPoint>,
    /// ASMan throughput per warehouse count.
    pub asman: Vec<JbbPoint>,
}

/// Complete Figure 10 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10 {
    /// Panels (a)-(c).
    pub panels: Vec<Fig10Panel>,
}

const RATES: [(u32, f64); 3] = [(128, 66.7), (64, 40.0), (32, 22.2)];

/// Run Figure 10.
pub fn run(params: &FigureParams) -> Fig10 {
    let max_w = 8;
    // Flatten to (rate, scheduler, warehouse-count) cells — 48
    // independent machines — and reassemble panels in grid order.
    let mut grid: Vec<(u32, Sched, usize)> = Vec::new();
    for &(w, _) in RATES.iter() {
        for sched in [Sched::Credit, Sched::Asman] {
            for wh in 1..=max_w {
                grid.push((w, sched, wh));
            }
        }
    }
    let points = params.runner().map(grid, |(w, sched, wh)| {
        JbbScenario::new(sched, w, params.seed).run(wh)
    });
    let panels = RATES
        .iter()
        .enumerate()
        .map(|(ri, &(_, pct))| {
            let base = ri * 2 * max_w;
            Fig10Panel {
                rate_pct: pct,
                credit: points[base..base + max_w].to_vec(),
                asman: points[base + max_w..base + 2 * max_w].to_vec(),
            }
        })
        .collect();
    Fig10 { panels }
}

impl Fig10 {
    /// Panel (d): SPECjbb scores per rate for both schedulers.
    pub fn scores(&self) -> Vec<(f64, f64, f64)> {
        self.panels
            .iter()
            .map(|p| {
                (
                    p.rate_pct,
                    JbbScenario::score(&p.credit),
                    JbbScenario::score(&p.asman),
                )
            })
            .collect()
    }

    /// Text tables in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 10 — SPECjbb throughput (bops) vs warehouses\n");
        for p in &self.panels {
            s.push_str(&format!("  online rate {}%:\n", p.rate_pct));
            s.push_str(&format!("  {:>4} {:>12} {:>12}\n", "w", "Credit", "ASMan"));
            for i in 0..p.credit.len() {
                s.push_str(&format!(
                    "  {:>4} {:>12.0} {:>12.0}\n",
                    p.credit[i].warehouses, p.credit[i].bops, p.asman[i].bops
                ));
            }
        }
        s.push_str("  (d) SPECjbb score:\n");
        for (pct, c, a) in self.scores() {
            s.push_str(&format!(
                "  {:>6.1}% Credit {:>8.0} ASMan {:>8.0} (gain {:+.1}%)\n",
                pct,
                c,
                a,
                (a / c - 1.0) * 100.0
            ));
        }
        s
    }

    /// The paper's qualitative claims about Figure 10.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let scores = self.scores();
        let gain_low = scores.last().map(|&(_, c, a)| a / c - 1.0).unwrap_or(0.0);
        let p66 = &self.panels[0];
        let ramp = p66.credit[3].bops > p66.credit[0].bops * 2.0;
        vec![
            ShapeCheck::new(
                "throughput ramps with warehouse count up to the VCPU count",
                ramp,
                format!(
                    "66.7%: 1w {:.0} vs 4w {:.0} bops",
                    p66.credit[0].bops, p66.credit[3].bops
                ),
            ),
            ShapeCheck::new(
                "ASMan's SPECjbb score beats Credit's at reduced online rates",
                scores.iter().all(|&(_, c, a)| a > c * 0.99)
                    && scores.iter().any(|&(_, c, a)| a > c),
                scores
                    .iter()
                    .map(|(p, c, a)| format!("{p}%: {c:.0} vs {a:.0}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            ShapeCheck::new(
                "the ASMan gain is largest at the lowest online rate (paper: up to ~26%)",
                gain_low >= scores[0].2 / scores[0].1 - 1.0 && gain_low > 0.0,
                format!("gain at 22.2%: {:+.1}%", gain_low * 100.0),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_follow_panels() {
        // Use a tiny window to keep the smoke test fast: run only one
        // panel worth of sweeps manually.
        let sc = JbbScenario {
            warmup_secs: 1,
            window_secs: 3,
            ..JbbScenario::new(Sched::Credit, 64, 3)
        };
        let pts = sc.sweep(5);
        assert_eq!(pts.len(), 5);
        let score = JbbScenario::score(&pts);
        assert!(score > 0.0);
    }
}
