//! Figure 2: per-spinlock waiting-time scatter under the Credit
//! scheduler, one panel per online rate, over a fixed observation window
//! while LU runs.

use asman_sim::Clock;
use asman_workloads::{NasBenchmark, NasSpec};
use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::{Sched, SingleVmScenario, WEIGHT_RATES};
use crate::window::WaitWindow;

/// One panel (one online rate) of the scatter figure.
#[derive(Clone, Debug, Serialize)]
pub struct ScatterPanel {
    /// Configured online rate, percent.
    pub rate_pct: f64,
    /// Individual waits ≥ 2^10 cycles, in observation order.
    pub waits: Vec<u64>,
    /// Population counts by exponent bands (2^10.., 2^15.., 2^20.., 2^25..).
    pub band_counts: [u64; 4],
}

/// The whole figure (four panels).
#[derive(Clone, Debug, Serialize)]
pub struct Scatter {
    /// Which scheduler produced the panels.
    pub sched: &'static str,
    /// Panels ordered 100 → 22.2%.
    pub panels: Vec<ScatterPanel>,
}

fn bands(waits: &[u64]) -> [u64; 4] {
    let mut b = [0u64; 4];
    for &w in waits {
        if w >= 1 << 25 {
            b[3] += 1;
        } else if w >= 1 << 20 {
            b[2] += 1;
        } else if w >= 1 << 15 {
            b[1] += 1;
        } else {
            b[0] += 1;
        }
    }
    b
}

/// Collect the scatter for a given scheduler (Figure 2 uses Credit;
/// Figure 8 reuses this with ASMan).
pub fn collect(sched: Sched, params: &FigureParams) -> Scatter {
    let clk = Clock::default();
    let window_secs = match params.class {
        asman_workloads::ProblemClass::S => 2,
        asman_workloads::ProblemClass::W => 10,
        asman_workloads::ProblemClass::A => 30,
    };
    let panels = params.runner().map(WEIGHT_RATES.to_vec(), |(w, pct)| {
        let sc = SingleVmScenario::new(sched, w, params.seed);
        let lu = NasSpec::new(NasBenchmark::LU, params.class, 4).build(params.seed ^ 7);
        let mut m = sc.build(Box::new(lu));
        let win = WaitWindow::collect(&mut m, 1, clk.ms(500), clk.secs(window_secs));
        ScatterPanel {
            rate_pct: pct,
            band_counts: bands(&win.samples),
            waits: win.samples,
        }
    });
    Scatter {
        sched: sched.label(),
        panels,
    }
}

/// Run Figure 2 (Credit scheduler).
pub fn run(params: &FigureParams) -> Scatter {
    collect(Sched::Credit, params)
}

impl Scatter {
    /// Band-count table (the scatter itself is exported as JSON).
    pub fn render(&self) -> String {
        let mut s = format!(
            "Waiting-time scatter bands under {} (counts per window)\n{:>8} {:>12} {:>12} {:>12} {:>12}\n",
            self.sched, "rate%", "2^10-2^15", "2^15-2^20", "2^20-2^25", ">=2^25"
        );
        for p in &self.panels {
            s.push_str(&format!(
                "{:>8.1} {:>12} {:>12} {:>12} {:>12}\n",
                p.rate_pct, p.band_counts[0], p.band_counts[1], p.band_counts[2], p.band_counts[3]
            ));
        }
        s
    }

    /// Qualitative claims of §2.2 about the scatter.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let p = &self.panels;
        let long_frac = |i: usize| {
            let total: u64 = p[i].band_counts.iter().sum();
            if total == 0 {
                0.0
            } else {
                (p[i].band_counts[2] + p[i].band_counts[3]) as f64 / total as f64
            }
        };
        vec![
            ShapeCheck::new(
                "the fraction of long waits (>= 2^20) grows as the online rate decreases",
                long_frac(3) > long_frac(0),
                format!(
                    "long-wait fraction: {:.4} at 100% vs {:.4} at 22.2%",
                    long_frac(0),
                    long_frac(3)
                ),
            ),
            ShapeCheck::new(
                "waits above 2^25 cycles occur at the lowest online rates",
                p[3].band_counts[3] + p[2].band_counts[3] > 0,
                format!(
                    ">=2^25 counts at 40%/22.2%: {} / {}",
                    p[2].band_counts[3], p[3].band_counts[3]
                ),
            ),
            ShapeCheck::new(
                "the majority of waits stay below 2^15 cycles at every rate",
                p.iter().all(|panel| {
                    let total: u64 = panel.band_counts.iter().sum();
                    total == 0 || panel.band_counts[0] * 2 > total
                }),
                "per-panel majority band is 2^10..2^15".to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_smoke() {
        let fig = run(&FigureParams {
            class: asman_workloads::ProblemClass::S,
            seed: 1,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(fig.panels.len(), 4);
        for p in &fig.panels {
            let total: u64 = p.band_counts.iter().sum();
            assert_eq!(total as usize, p.waits.len());
        }
        assert!(!fig.render().is_empty());
    }
}
