//! Figure 11: four VMs running simultaneously under Credit, ASMan and
//! CON (static coscheduling).
//!
//! (a) mixed combination — 256.bzip2, 176.gcc, SP, LU;
//! (b) all-concurrent combination — LU, LU, SP, SP.

use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::multivm::{paper_combination, MultiVmRow, MultiVmScenario};
use crate::scenario::Sched;

/// One combination's results across the three schedulers.
#[derive(Clone, Debug, Serialize)]
pub struct Combination {
    /// Combination label.
    pub label: String,
    /// Per-VM rows under Credit.
    pub credit: Vec<MultiVmRow>,
    /// Per-VM rows under ASMan.
    pub asman: Vec<MultiVmRow>,
    /// Per-VM rows under CON.
    pub con: Vec<MultiVmRow>,
}

impl Combination {
    /// Run one workload combination across the three schedulers (one
    /// independent machine each, fanned over the sweep runner).
    pub fn run(label: &str, which: u8, params: &FigureParams) -> Combination {
        let mut base =
            MultiVmScenario::new(Sched::Credit, paper_combination(which), params.class, params.seed);
        base.rounds = params.rounds;
        let mut rows =
            crate::multivm::run_under_schedulers(&base, &Sched::ALL, &params.runner()).into_iter();
        Combination {
            label: label.to_string(),
            credit: rows.next().expect("credit rows"),
            asman: rows.next().expect("asman rows"),
            con: rows.next().expect("con rows"),
        }
    }

    /// Render the per-VM mean round times for the three schedulers.
    pub fn render(&self) -> String {
        let mut s = format!("  {}:\n", self.label);
        s.push_str(&format!(
            "  {:>4} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "vm", "workload", "Credit(s)", "ASMan(s)", "CON(s)", "CoV%"
        ));
        for i in 0..self.credit.len() {
            s.push_str(&format!(
                "  {:>4} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>7.1}\n",
                self.credit[i].vm,
                self.credit[i].workload,
                self.credit[i].mean_round_secs,
                self.asman[i].mean_round_secs,
                self.con[i].mean_round_secs,
                self.credit[i].cov * 100.0,
            ));
        }
        s
    }

    /// Index pairs of (concurrent, throughput) VMs.
    fn split(&self) -> (Vec<usize>, Vec<usize>) {
        let mut conc = Vec::new();
        let mut thr = Vec::new();
        for (i, r) in self.credit.iter().enumerate() {
            if r.workload.contains('.') {
                thr.push(i); // "176.gcc" / "256.bzip2"
            } else {
                conc.push(i);
            }
        }
        (conc, thr)
    }

    /// Shape checks shared by Figures 11 and 12.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let (conc, thr) = self.split();
        let mean = |rows: &[MultiVmRow], idx: &[usize]| {
            if idx.is_empty() {
                return 0.0;
            }
            idx.iter().map(|&i| rows[i].mean_round_secs).sum::<f64>() / idx.len() as f64
        };
        let mut checks = vec![ShapeCheck::new(
            format!(
                "{}: coscheduling (ASMan & CON) speeds up the concurrent workloads vs Credit",
                self.label
            ),
            mean(&self.asman, &conc) < mean(&self.credit, &conc)
                && mean(&self.con, &conc) < mean(&self.credit, &conc),
            format!(
                "concurrent mean rounds: Credit {:.1}s, ASMan {:.1}s, CON {:.1}s",
                mean(&self.credit, &conc),
                mean(&self.asman, &conc),
                mean(&self.con, &conc)
            ),
        )];
        if !thr.is_empty() {
            let c = mean(&self.credit, &thr);
            let a = mean(&self.asman, &thr);
            let s = mean(&self.con, &thr);
            checks.push(ShapeCheck::new(
                format!(
                    "{}: ASMan hurts the high-throughput workloads less than CON does",
                    self.label
                ),
                a <= s * 1.02,
                format!("throughput mean rounds: Credit {c:.1}s, ASMan {a:.1}s, CON {s:.1}s"),
            ));
            checks.push(ShapeCheck::new(
                format!(
                    "{}: throughput-workload degradation under ASMan stays moderate",
                    self.label
                ),
                a < c * 1.25,
                format!(
                    "ASMan {:.1}s vs Credit {:.1}s ({:+.1}%)",
                    a,
                    c,
                    (a / c - 1.0) * 100.0
                ),
            ));
        }
        // The paper's acceptance gate is CoV < 10%. Our concurrent VMs
        // meet it; the throughput VMs in mixed combinations see more
        // round-to-round variance (their share fluctuates with the
        // coscheduled VMs' phases), so they get a looser bound — the
        // deviation is recorded in EXPERIMENTS.md.
        let worst = |rows: &[&MultiVmRow]| {
            rows.iter()
                .filter(|r| r.rounds_completed >= 3)
                .map(|r| (r.workload.clone(), r.cov))
                .fold(
                    ("-".to_string(), 0.0),
                    |acc, x| if x.1 > acc.1 { x } else { acc },
                )
        };
        let all: Vec<&MultiVmRow> = self
            .credit
            .iter()
            .chain(&self.asman)
            .chain(&self.con)
            .collect();
        let conc_rows: Vec<&MultiVmRow> = all
            .iter()
            .filter(|r| !r.workload.contains('.'))
            .copied()
            .collect();
        let thr_rows: Vec<&MultiVmRow> = all
            .iter()
            .filter(|r| r.workload.contains('.'))
            .copied()
            .collect();
        let wc = worst(&conc_rows);
        let wt = worst(&thr_rows);
        checks.push(ShapeCheck::new(
            format!(
                "{}: concurrent-VM round times are stable (~the paper's 10% CoV gate)",
                self.label
            ),
            wc.1 < 0.12,
            format!("worst concurrent CoV: {} at {:.1}%", wc.0, wc.1 * 100.0),
        ));
        if !thr_rows.is_empty() {
            // A throughput VM's share swings with the concurrent VMs'
            // phases in this model, so its round-to-round variance runs
            // well above the paper's 10% gate (EXPERIMENTS.md deviation
            // #5); the check only guards against pathological blow-ups.
            checks.push(ShapeCheck::new(
                format!(
                    "{}: throughput-VM round times are boundedly variable",
                    self.label
                ),
                wt.1 < 0.60,
                format!("worst throughput CoV: {} at {:.1}%", wt.0, wt.1 * 100.0),
            ));
        }
        checks
    }
}

/// Complete Figure 11 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11 {
    /// Panel (a): mixed workloads.
    pub mixed: Combination,
    /// Panel (b): all-concurrent workloads.
    pub concurrent: Combination,
}

/// Run Figure 11.
pub fn run(params: &FigureParams) -> Fig11 {
    Fig11 {
        mixed: Combination::run("11(a) bzip2/gcc/SP/LU", 1, params),
        concurrent: Combination::run("11(b) LU/LU/SP/SP", 2, params),
    }
}

impl Fig11 {
    /// Text tables.
    pub fn render(&self) -> String {
        format!(
            "Figure 11 — four VMs running simultaneously\n{}{}",
            self.mixed.render(),
            self.concurrent.render()
        )
    }

    /// All shape checks.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut v = self.mixed.shape_checks();
        v.extend(self.concurrent.shape_checks());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_workloads::ProblemClass;

    #[test]
    fn tiny_combination_runs_three_schedulers() {
        let params = FigureParams {
            class: ProblemClass::S,
            seed: 3,
            rounds: 2,
            jobs: 1,
        };
        let combo = Combination::run("test", 1, &params);
        assert_eq!(combo.credit.len(), 4);
        assert_eq!(combo.asman.len(), 4);
        assert_eq!(combo.con.len(), 4);
        assert!(!combo.render().is_empty());
        assert!(combo.shape_checks().len() >= 3);
    }
}
