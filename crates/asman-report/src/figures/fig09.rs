//! Figure 9: slowdowns of all seven NAS benchmarks at 66.7/40/22.2%
//! online rates under Credit and ASMan, plus the per-rate averages.
//!
//! The slowdown of a run is its run time divided by the run time of the
//! same benchmark under Credit at a 100% online rate.

use asman_workloads::{NasBenchmark, NasSpec};
use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::{Sched, SingleVmScenario};

/// Slowdown of one benchmark at one rate under both schedulers.
#[derive(Clone, Debug, Serialize)]
pub struct Fig09Cell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Online rate, percent.
    pub rate_pct: f64,
    /// Credit slowdown.
    pub credit: f64,
    /// ASMan slowdown.
    pub asman: f64,
}

/// Complete Figure 9 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig09 {
    /// Baseline (Credit @ 100%) run times per benchmark, seconds.
    pub baseline_secs: Vec<(&'static str, f64)>,
    /// All cells (7 benchmarks × 3 rates).
    pub cells: Vec<Fig09Cell>,
}

const RATES: [(u32, f64); 3] = [(128, 66.7), (64, 40.0), (32, 22.2)];

/// Run Figure 9.
pub fn run(params: &FigureParams) -> Fig09 {
    // One sweep cell per independent simulation: the Credit @ 100%
    // baseline plus 3 rates × 2 schedulers, for each of the 7 benchmarks
    // (49 machines). Results are reassembled in the fixed grid order, so
    // the output is bit-identical for every worker count.
    let mut grid: Vec<(NasBenchmark, u32, Sched)> = Vec::new();
    for bench in NasBenchmark::ALL {
        grid.push((bench, 256, Sched::Credit));
        for (w, _) in RATES {
            grid.push((bench, w, Sched::Credit));
            grid.push((bench, w, Sched::Asman));
        }
    }
    let outs = params.runner().map(grid, |(bench, w, sched)| {
        let program = NasSpec::new(bench, params.class, 4).build(params.seed ^ 7);
        SingleVmScenario::new(sched, w, params.seed).run(Box::new(program))
    });
    let per_bench = 1 + RATES.len() * 2;
    let mut baseline_secs = Vec::new();
    let mut cells = Vec::new();
    for (bi, bench) in NasBenchmark::ALL.into_iter().enumerate() {
        let base = &outs[bi * per_bench];
        baseline_secs.push((bench.name(), base.run_secs));
        for (ri, (_, pct)) in RATES.into_iter().enumerate() {
            let credit = &outs[bi * per_bench + 1 + 2 * ri];
            let asman = &outs[bi * per_bench + 2 + 2 * ri];
            cells.push(Fig09Cell {
                bench: bench.name(),
                rate_pct: pct,
                credit: credit.run_secs / base.run_secs,
                asman: asman.run_secs / base.run_secs,
            });
        }
    }
    Fig09 {
        baseline_secs,
        cells,
    }
}

impl Fig09 {
    /// Cells at one rate.
    pub fn at_rate(&self, pct: f64) -> Vec<&Fig09Cell> {
        self.cells
            .iter()
            .filter(|c| (c.rate_pct - pct).abs() < 0.1)
            .collect()
    }

    /// Figure 9(d): average slowdown over all benchmarks per rate.
    pub fn averages(&self) -> Vec<(f64, f64, f64)> {
        RATES
            .iter()
            .map(|&(_, pct)| {
                let cells = self.at_rate(pct);
                let n = cells.len() as f64;
                let c = cells.iter().map(|x| x.credit).sum::<f64>() / n;
                let a = cells.iter().map(|x| x.asman).sum::<f64>() / n;
                (pct, c, a)
            })
            .collect()
    }

    /// Text tables in the paper's layout (panels (a)-(c) and (d)).
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 9 — NAS slowdowns (vs Credit @ 100%)\n");
        for (_, pct) in RATES {
            s.push_str(&format!("  online rate {pct}%:\n"));
            s.push_str(&format!(
                "  {:>6} {:>10} {:>10} {:>10}\n",
                "bench", "Credit", "ASMan", "saving%"
            ));
            for c in self.at_rate(pct) {
                s.push_str(&format!(
                    "  {:>6} {:>10.2} {:>10.2} {:>10.1}\n",
                    c.bench,
                    c.credit,
                    c.asman,
                    (1.0 - c.asman / c.credit) * 100.0
                ));
            }
        }
        s.push_str("  (d) average slowdown:\n");
        for (pct, c, a) in self.averages() {
            s.push_str(&format!(
                "  {:>6.1}% Credit {:.2} ASMan {:.2} (excess saved {:.0}%)\n",
                pct,
                c,
                a,
                if c > 100.0 / pct {
                    (c - a) / (c - 100.0 / pct) * 100.0
                } else {
                    0.0
                }
            ));
        }
        s
    }

    /// The paper's qualitative claims about Figure 9.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let avg = self.averages();
        let cell = |bench: &str, pct: f64| {
            self.cells
                .iter()
                .find(|c| c.bench == bench && (c.rate_pct - pct).abs() < 0.1)
                .expect("cell")
        };
        let lu = cell("LU", 22.2);
        let ep = cell("EP", 22.2);
        let wins = self
            .cells
            .iter()
            .filter(|c| c.asman <= c.credit * 1.02)
            .count();
        vec![
            ShapeCheck::new(
                "ASMan outperforms (or matches) Credit across benchmarks and rates",
                wins * 10 >= self.cells.len() * 9,
                format!("{} of {} cells within/below Credit", wins, self.cells.len()),
            ),
            ShapeCheck::new(
                "average ASMan slowdown is lower than Credit at every reduced rate",
                avg.iter().all(|&(_, c, a)| a < c),
                avg.iter()
                    .map(|(p, c, a)| format!("{p}%: {c:.2} vs {a:.2}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            ShapeCheck::new(
                "LU is the most scheduler-sensitive benchmark at 22.2% under Credit",
                self.at_rate(22.2)
                    .iter()
                    .all(|c| c.bench == "LU" || c.credit <= lu.credit),
                format!("LU Credit slowdown {:.2}", lu.credit),
            ),
            ShapeCheck::new(
                "EP (no synchronization) stays near the ideal 4.5x at 22.2% under both schedulers",
                ep.credit < 5.5 && ep.asman < 5.5,
                format!("EP: Credit {:.2}, ASMan {:.2}", ep.credit, ep.asman),
            ),
            ShapeCheck::new(
                "ASMan saves a substantial share of the average excess slowdown at 22.2%",
                {
                    let (_, c, a) = avg[2];
                    c > 4.5 && (c - a) / (c - 4.5) > 0.2
                },
                format!(
                    "avg at 22.2%: Credit {:.2}, ASMan {:.2}",
                    avg[2].1, avg[2].2
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_smoke_subset() {
        // Full fig09 at class S is still 7×7 runs; keep the smoke test on
        // the shape plumbing only.
        let fig = run(&FigureParams {
            class: asman_workloads::ProblemClass::S,
            seed: 1,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(fig.cells.len(), 21);
        assert_eq!(fig.baseline_secs.len(), 7);
        assert_eq!(fig.averages().len(), 3);
        assert!(!fig.render().is_empty());
    }
}
