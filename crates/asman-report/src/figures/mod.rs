//! One module per paper figure.
//!
//! Every figure function returns a serializable result carrying the raw
//! series, a `render()` text table matching the paper's rows, and
//! `shape_checks()` — named boolean assertions of the *qualitative*
//! claims the paper makes about that figure (who wins, what grows, what
//! collapses). The `repro` binary prints the tables and records the
//! checks in `EXPERIMENTS.md`; integration tests assert the checks.

pub mod fig01;
pub mod fig02;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;

use serde::Serialize;

/// A named qualitative assertion about a figure's shape.
#[derive(Clone, Debug, Serialize)]
pub struct ShapeCheck {
    /// What the paper claims.
    pub claim: String,
    /// Whether the reproduction exhibits it.
    pub holds: bool,
    /// Supporting numbers, human-readable.
    pub evidence: String,
}

impl ShapeCheck {
    /// Build a check.
    pub fn new(claim: impl Into<String>, holds: bool, evidence: impl Into<String>) -> Self {
        ShapeCheck {
            claim: claim.into(),
            holds,
            evidence: evidence.into(),
        }
    }
}

/// Common run parameters for all figures.
#[derive(Clone, Copy, Debug)]
pub struct FigureParams {
    /// NAS problem class to run.
    pub class: asman_workloads::ProblemClass,
    /// Base seed.
    pub seed: u64,
    /// Rounds averaged in multi-VM experiments.
    pub rounds: usize,
    /// Worker threads for sweep cells (`0` = available parallelism,
    /// `1` = the historical sequential path). Cell results are
    /// bit-identical for every value; this only changes wall-clock time.
    pub jobs: usize,
}

impl FigureParams {
    /// The sweep executor configured by [`FigureParams::jobs`].
    pub fn runner(&self) -> crate::exec::SweepRunner {
        crate::exec::SweepRunner::new(self.jobs)
    }
}

impl Default for FigureParams {
    fn default() -> Self {
        FigureParams {
            class: asman_workloads::ProblemClass::W,
            seed: 42,
            rounds: 10,
            jobs: 0,
        }
    }
}
