//! Figure 12: six VMs running simultaneously under Credit, ASMan, CON.
//!
//! (a) bzip2, bzip2, gcc, gcc, SP, LU;
//! (b) bzip2, gcc, SP, SP, LU, LU.

use serde::Serialize;

use crate::figures::fig11::Combination;
use crate::figures::{FigureParams, ShapeCheck};

/// Complete Figure 12 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12 {
    /// Panel (a): four throughput + two concurrent VMs.
    pub throughput_heavy: Combination,
    /// Panel (b): two throughput + four concurrent VMs.
    pub concurrent_heavy: Combination,
}

/// Run Figure 12.
pub fn run(params: &FigureParams) -> Fig12 {
    Fig12 {
        throughput_heavy: Combination::run("12(a) bzip2x2/gccx2/SP/LU", 3, params),
        concurrent_heavy: Combination::run("12(b) bzip2/gcc/SPx2/LUx2", 4, params),
    }
}

impl Fig12 {
    /// Text tables.
    pub fn render(&self) -> String {
        format!(
            "Figure 12 — six VMs running simultaneously\n{}{}",
            self.throughput_heavy.render(),
            self.concurrent_heavy.render()
        )
    }

    /// Shape checks, including the §5.3 summary claims.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut v = self.throughput_heavy.shape_checks();
        v.extend(self.concurrent_heavy.shape_checks());
        // §5.3: coscheduling saves a large share of LU's run time in the
        // six-VM combinations.
        let lu_saving = |c: &Combination| {
            let idx = c
                .credit
                .iter()
                .position(|r| r.workload == "LU")
                .expect("LU present");
            1.0 - c.asman[idx].mean_round_secs / c.credit[idx].mean_round_secs
        };
        let s_a = lu_saving(&self.throughput_heavy);
        let s_b = lu_saving(&self.concurrent_heavy);
        v.push(ShapeCheck::new(
            "12: coscheduling saves a substantial share of LU's run time in both combinations",
            s_a > 0.05 && s_b > 0.05,
            format!(
                "LU savings: 12(a) {:.0}%, 12(b) {:.0}%",
                s_a * 100.0,
                s_b * 100.0
            ),
        ));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_workloads::ProblemClass;

    #[test]
    fn six_vm_combo_smoke() {
        let params = FigureParams {
            class: ProblemClass::S,
            seed: 3,
            rounds: 2,
            jobs: 1,
        };
        let combo = Combination::run("test-6", 3, &params);
        assert_eq!(combo.credit.len(), 6);
        assert!(combo.credit.iter().any(|r| r.workload == "LU"));
    }
}
