//! Figure 7: LU run time in VM V1 — Credit vs ASMan across online rates.

use asman_workloads::{NasBenchmark, NasSpec};
use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::{Sched, SingleVmScenario, WEIGHT_RATES};

/// One online-rate point.
#[derive(Clone, Debug, Serialize)]
pub struct Fig07Row {
    /// Configured online rate, percent.
    pub rate_pct: f64,
    /// Run time under the Credit scheduler, simulated seconds.
    pub credit_secs: f64,
    /// Run time under ASMan, simulated seconds.
    pub asman_secs: f64,
    /// VCRD raises observed in the ASMan run.
    pub vcrd_raises: u64,
    /// Fraction of the ASMan run spent with VCRD HIGH.
    pub vcrd_high_frac: f64,
}

/// Complete Figure 7 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig07 {
    /// One row per online rate.
    pub rows: Vec<Fig07Row>,
}

/// Run Figure 7.
pub fn run(params: &FigureParams) -> Fig07 {
    // Fan out at (rate, scheduler) granularity — 8 independent cells —
    // then pair them back up per rate.
    let cells: Vec<(u32, Sched)> = WEIGHT_RATES
        .iter()
        .flat_map(|&(w, _)| [(w, Sched::Credit), (w, Sched::Asman)])
        .collect();
    let outs = params.runner().map(cells, |(w, sched)| {
        let lu = NasSpec::new(NasBenchmark::LU, params.class, 4).build(params.seed ^ 7);
        SingleVmScenario::new(sched, w, params.seed).run(Box::new(lu))
    });
    let rows = WEIGHT_RATES
        .iter()
        .enumerate()
        .map(|(i, &(_, pct))| {
            let credit = &outs[2 * i];
            let asman = &outs[2 * i + 1];
            Fig07Row {
                rate_pct: pct,
                credit_secs: credit.run_secs,
                asman_secs: asman.run_secs,
                vcrd_raises: asman.vcrd_raises,
                vcrd_high_frac: asman.vcrd_high_frac,
            }
        })
        .collect();
    Fig07 { rows }
}

impl Fig07 {
    /// Text table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 7 — LU run time in V1: Credit vs ASMan vs online rate\n");
        s.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>10} {:>8} {:>8}\n",
            "rate%", "Credit(s)", "ASMan(s)", "saving%", "raises", "high%"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:>8.1} {:>12.1} {:>12.1} {:>10.1} {:>8} {:>8.1}\n",
                r.rate_pct,
                r.credit_secs,
                r.asman_secs,
                (1.0 - r.asman_secs / r.credit_secs) * 100.0,
                r.vcrd_raises,
                r.vcrd_high_frac * 100.0
            ));
        }
        s
    }

    /// The paper's qualitative claims about Figure 7.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let r = &self.rows;
        let ideal = |pct: f64| r[0].credit_secs / (pct / 100.0);
        // Excess over the ideal rate-scaled run time.
        let excess = |t: f64, pct: f64| (t - ideal(pct)).max(0.0);
        let recovered = {
            let (c, a) = (r[3].credit_secs, r[3].asman_secs);
            let e = excess(c, 22.2);
            if e > 0.0 {
                (c - a) / e
            } else {
                0.0
            }
        };
        vec![
            ShapeCheck::new(
                "at 100% online rate the two schedulers perform alike (within 3%)",
                (r[0].asman_secs / r[0].credit_secs - 1.0).abs() < 0.03,
                format!(
                    "Credit {:.2}s vs ASMan {:.2}s",
                    r[0].credit_secs, r[0].asman_secs
                ),
            ),
            ShapeCheck::new(
                "ASMan beats Credit at every reduced online rate",
                r[1..].iter().all(|x| x.asman_secs < x.credit_secs),
                r[1..]
                    .iter()
                    .map(|x| {
                        format!(
                            "{:.0}%: {:.1} vs {:.1}",
                            x.rate_pct, x.credit_secs, x.asman_secs
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            ShapeCheck::new(
                "ASMan recovers a large share of Credit's excess over the ideal at 22.2%",
                recovered > 0.25,
                format!("{:.0}% of the excess recovered", recovered * 100.0),
            ),
            ShapeCheck::new(
                "the VCRD is HIGH for a substantial fraction at reduced rates, and ~never at 100%",
                r[0].vcrd_high_frac < 0.05 && r[1..].iter().all(|x| x.vcrd_high_frac > 0.10),
                format!(
                    "high fraction: {:.2} (100%) / {:.2} / {:.2} / {:.2}",
                    r[0].vcrd_high_frac,
                    r[1].vcrd_high_frac,
                    r[2].vcrd_high_frac,
                    r[3].vcrd_high_frac
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_smoke() {
        let fig = run(&FigureParams {
            class: asman_workloads::ProblemClass::S,
            seed: 1,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(fig.rows.len(), 4);
        // Both schedulers complete at all rates.
        assert!(fig
            .rows
            .iter()
            .all(|r| r.credit_secs > 0.0 && r.asman_secs > 0.0));
    }
}
