//! Figure 8: the spinlock waiting-time scatter of Figure 2, repeated
//! under ASMan — adaptive coscheduling removes most of the
//! over-threshold population.

use serde::Serialize;

use crate::figures::fig02::{self, Scatter};
use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::Sched;

/// Figure 8 result: the ASMan scatter plus the Credit one to compare.
#[derive(Clone, Debug, Serialize)]
pub struct Fig08 {
    /// ASMan panels.
    pub asman: Scatter,
    /// Credit panels (Figure 2) for the comparison claims.
    pub credit: Scatter,
}

/// Run Figure 8 (and the Figure 2 baseline for comparison).
pub fn run(params: &FigureParams) -> Fig08 {
    Fig08 {
        asman: fig02::collect(Sched::Asman, params),
        credit: fig02::collect(Sched::Credit, params),
    }
}

impl Fig08 {
    /// Band-count comparison table.
    pub fn render(&self) -> String {
        let mut s = String::from("Figure 8 — spinlock waits under ASMan (vs Figure 2 Credit)\n");
        s.push_str(&self.asman.render());
        s.push_str(&self.credit.render());
        s
    }

    /// Comparison claims of §5.2 (Figure 8 vs Figure 2).
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        // Compare the lowest-rate panels: ASMan must cut the extreme tail.
        let a = &self.asman.panels[3].band_counts;
        let c = &self.credit.panels[3].band_counts;
        let a_extreme = a[3];
        let c_extreme = c[3];
        let a_over = a[2] + a[3];
        let c_over = c[2] + c[3];
        vec![
            ShapeCheck::new(
                "ASMan reduces the over-threshold (>= 2^20) population at 22.2%",
                a_over < c_over,
                format!("over-threshold/window: ASMan {a_over} vs Credit {c_over}"),
            ),
            ShapeCheck::new(
                "ASMan cuts the extreme tail (>= 2^25) at 22.2%",
                a_extreme <= c_extreme && c_extreme > 0,
                format!(">=2^25/window: ASMan {a_extreme} vs Credit {c_extreme}"),
            ),
            ShapeCheck::new(
                "spinlock activity itself persists under ASMan (coscheduling does not remove locks, only long waits)",
                self.asman.panels[3].waits.len() > 10,
                format!("{} traced waits at 22.2%", self.asman.panels[3].waits.len()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_smoke() {
        let fig = run(&FigureParams {
            class: asman_workloads::ProblemClass::S,
            seed: 1,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(fig.asman.panels.len(), 4);
        assert_eq!(fig.credit.panels.len(), 4);
        assert!(!fig.render().is_empty());
    }
}
