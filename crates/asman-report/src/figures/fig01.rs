//! Figure 1: LU on a 4-VCPU VM under the Credit scheduler.
//!
//! (a) run time vs VCPU online rate {100, 66.7, 40, 22.2}%;
//! (b) counts of spinlocks with waits > 2^10 and > 2^20 cycles during a
//! fixed observation window while LU runs.

use asman_sim::Clock;
use asman_workloads::{NasBenchmark, NasSpec};
use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::{Sched, SingleVmScenario, WEIGHT_RATES};
use crate::window::WaitWindow;

/// One online-rate point of Figure 1.
#[derive(Clone, Debug, Serialize)]
pub struct Fig01Row {
    /// Configured VCPU online rate, percent.
    pub rate_pct: f64,
    /// LU run time, simulated seconds (Figure 1(a)).
    pub run_secs: f64,
    /// Windowed waits > 2^10 (Figure 1(b), light bars).
    pub over_2_10: u64,
    /// Windowed waits > 2^20 (Figure 1(b), dark bars).
    pub over_2_20: u64,
    /// Spinlock acquisitions in the window.
    pub window_locks: u64,
}

/// Complete Figure 1 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig01 {
    /// One row per online rate.
    pub rows: Vec<Fig01Row>,
    /// Observation window length, simulated seconds.
    pub window_secs: u64,
}

/// Run Figure 1.
pub fn run(params: &FigureParams) -> Fig01 {
    let clk = Clock::default();
    // The paper observes 30 s; we scale the window with the problem
    // class so it always sits inside the run.
    let window_secs = match params.class {
        asman_workloads::ProblemClass::S => 2,
        asman_workloads::ProblemClass::W => 10,
        asman_workloads::ProblemClass::A => 30,
    };
    // Each rate is two independent simulations (a timed run and a
    // windowed wait trace); fan all of them out as sweep cells.
    let rows = params.runner().map(WEIGHT_RATES.to_vec(), |(w, pct)| {
        let sc = SingleVmScenario::new(Sched::Credit, w, params.seed);
        // Run-time measurement.
        let lu = NasSpec::new(NasBenchmark::LU, params.class, 4).build(params.seed ^ 7);
        let out = sc.run(Box::new(lu));
        // Windowed wait measurement on a fresh machine.
        let lu2 = NasSpec::new(NasBenchmark::LU, params.class, 4).build(params.seed ^ 7);
        let mut m = sc.build(Box::new(lu2));
        let win = WaitWindow::collect(&mut m, 1, clk.ms(500), clk.secs(window_secs));
        Fig01Row {
            rate_pct: pct,
            run_secs: out.run_secs,
            over_2_10: win.over_2_10,
            over_2_20: win.over_2_20,
            window_locks: win.locks,
        }
    });
    Fig01 { rows, window_secs }
}

impl Fig01 {
    /// Text table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Figure 1 — LU under Credit: run time and spinlock waits vs online rate\n",
        );
        s.push_str(&format!(
            "{:>8} {:>12} {:>14} {:>12} {:>12}\n",
            "rate%", "run time(s)", "window locks", ">2^10", ">2^20"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:>8.1} {:>12.1} {:>14} {:>12} {:>12}\n",
                r.rate_pct, r.run_secs, r.window_locks, r.over_2_10, r.over_2_20
            ));
        }
        s
    }

    /// The paper's qualitative claims about Figure 1.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let r = &self.rows;
        let run = |i: usize| r[i].run_secs;
        vec![
            ShapeCheck::new(
                "run time increases monotonically as the online rate decreases",
                run(0) < run(1) && run(1) < run(2) && run(2) < run(3),
                format!(
                    "{:.1}s -> {:.1}s -> {:.1}s -> {:.1}s",
                    run(0),
                    run(1),
                    run(2),
                    run(3)
                ),
            ),
            ShapeCheck::new(
                "degradation is super-proportional: slowdown at 22.2% exceeds the ideal 4.5x",
                run(3) / run(0) > 4.5,
                format!("slowdown {:.2}x vs ideal 4.5x", run(3) / run(0)),
            ),
            ShapeCheck::new(
                "over-threshold (> 2^20) waits appear at reduced rates but not at 100%",
                r[0].over_2_20 <= r[1].over_2_20.max(1)
                    && r[3].over_2_20 > r[0].over_2_20
                    && r[3].over_2_20 > 0,
                format!(
                    ">2^20 counts: {} / {} / {} / {}",
                    r[0].over_2_20, r[1].over_2_20, r[2].over_2_20, r[3].over_2_20
                ),
            ),
            ShapeCheck::new(
                "window lock count shrinks as the online rate decreases (less work per window)",
                r[3].window_locks < r[0].window_locks,
                format!(
                    "locks/window: {} at 100% vs {} at 22.2%",
                    r[0].window_locks, r[3].window_locks
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_smoke() {
        let fig = run(&FigureParams {
            class: asman_workloads::ProblemClass::S,
            seed: 1,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(fig.rows.len(), 4);
        assert!(fig.rows.iter().all(|r| r.run_secs > 0.0));
        // Monotone degradation must hold even at the smallest class.
        assert!(fig.rows[3].run_secs > fig.rows[0].run_secs);
        assert!(!fig.render().is_empty());
    }
}
