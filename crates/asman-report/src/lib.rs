//! Experiment harness reproducing the ASMan paper's figures.
//!
//! Each [`figures`] submodule regenerates one figure of the evaluation
//! (§5): it builds the paper's VM combination, runs the simulated machine
//! under the relevant scheduler(s), and returns structured series that
//! the `repro` binary prints as tables and dumps as JSON. The qualitative
//! claims of each figure are encoded as [`figures::ShapeCheck`]s, which
//! the integration test suite asserts.
//!
//! ```no_run
//! use asman_report::figures::{fig07, FigureParams};
//!
//! let fig = fig07::run(&FigureParams::default());
//! println!("{}", fig.render());
//! for check in fig.shape_checks() {
//!     assert!(check.holds, "{}: {}", check.claim, check.evidence);
//! }
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod bisect;
pub mod checkpoint;
pub mod cluster;
pub mod clusterbench;
pub mod csv;
pub mod exec;
pub mod extensions;
pub mod figures;
pub mod flightrec;
pub mod jbb;
pub mod logger;
pub mod multivm;
pub mod scenario;
pub mod series;
pub mod soak;
pub mod timeline;
pub mod window;

pub use exec::SweepRunner;
pub use jbb::{JbbPoint, JbbScenario};
pub use multivm::{paper_combination, MultiVmRow, MultiVmScenario, VmWorkload};
pub use scenario::{
    dom0_vm, idle_vm, machine_for, Sched, SingleVmOutcome, SingleVmScenario, WEIGHT_RATES,
};
pub use timeline::{OnlineSpan, Timeline};
pub use window::WaitWindow;
