//! Cluster performance harness (`repro cluster --bench`).
//!
//! Measures the parallel epoch driver over a hosts × jobs grid on the
//! uniformly loaded scaling scenario (`asman_cluster::scenario::uniform`:
//! one gang plus one background VM per host, nothing to migrate). Each
//! cell runs one warmup run, then `samples` timed runs, and reports the
//! **median** wall time — cold caches and one-off allocator work land in
//! the warmup, outlier interference lands outside the median. Reported
//! rates are epochs/sec (the cluster driver's unit of progress) and
//! guest-events/sec (summed over hosts — the engine's unit of work).
//!
//! Every cell also digests its final [`ClusterReport`]; within a hosts
//! row all digests must match the `jobs = 1` baseline, so the bench
//! doubles as a determinism cross-check and refuses to report a speedup
//! obtained by computing something different.
//!
//! Rows whose resolved move budget exceeds one also run the
//! **convergence comparison**: the hotspot scenario
//! (`asman_cluster::scenario::hotspot`, `hosts/4` overloaded hosts
//! that each need to shed one gang) to a fixed horizon under budget 1
//! and under the row's budget, reporting epochs-to-balance for both.
//! Lifting the one-migration-per-epoch cap is the point of
//! `--max-moves`; this is the measurement that shows it.

use asman_cluster::{scenario, Cluster, ClusterConfig, EpochProfile, Policy};
use serde::Serialize;
use std::fmt::Write as _;

use crate::cluster::digest_report;

/// Parameters of the bench grid.
#[derive(Clone, Debug)]
pub struct BenchParams {
    /// Host counts to sweep (rows).
    pub hosts_grid: Vec<usize>,
    /// Worker counts to sweep within each row (`0` = auto).
    pub jobs_grid: Vec<usize>,
    /// Epochs per run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Timed runs per cell (median is reported).
    pub samples: usize,
    /// Per-epoch migration budget; `None` resolves per hosts row to
    /// the CLI default `max(1, hosts/8)`.
    pub max_moves: Option<usize>,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            hosts_grid: vec![2, 4, 8],
            jobs_grid: vec![1, 2, 4, 8],
            epochs: 6,
            seed: 42,
            samples: 3,
            max_moves: None,
        }
    }
}

/// One (hosts, jobs) cell of the bench grid.
#[derive(Clone, Debug, Serialize)]
pub struct BenchCell {
    /// Simulated hosts.
    pub hosts: usize,
    /// Requested worker count (`0` = auto).
    pub jobs: usize,
    /// Worker count actually used.
    pub effective_jobs: usize,
    /// Median wall seconds of the timed runs.
    pub wall_secs_median: f64,
    /// Cluster epochs per wall second.
    pub epochs_per_sec: f64,
    /// Guest simulation events per wall second (summed over hosts).
    pub guest_events_per_sec: f64,
    /// Total guest events per run (deterministic across samples).
    pub events: u64,
    /// FNV-1a digest of the final cluster report.
    pub digest: String,
    /// `epochs_per_sec` relative to this row's `jobs = 1` cell
    /// (`1.0` when this is the baseline).
    pub speedup_vs_jobs1: f64,
    /// Parallel host-advance wall seconds of the median run, summed
    /// over epochs.
    pub parallel_wall_secs: f64,
    /// Worker-idle time at the epoch barrier of the median run, summed
    /// over epochs (`jobs × parallel_wall − worker_busy` per epoch).
    pub barrier_stall_secs: f64,
    /// Serial balancer-section wall seconds of the median run, summed
    /// over epochs.
    pub serial_wall_secs: f64,
    /// Median wall-time cost of arming the telemetry layer (series
    /// sampler + latency histograms), relative to the telemetry-off
    /// median; floored at zero. The telemetry run's digest is asserted
    /// equal to the telemetry-off digest before this is reported.
    pub telemetry_overhead_pct: f64,
    /// Per-epoch wall-time attribution of the median telemetry-off run.
    pub profile: Vec<EpochProfile>,
}

/// The full bench artifact (`BENCH_cluster.json`).
#[derive(Clone, Debug, Serialize)]
pub struct ClusterBench {
    /// Epochs per run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Timed samples per cell (median reported).
    pub samples: usize,
    /// Threads the host machine advertises.
    pub available_parallelism: usize,
    /// The grid, hosts-major in parameter order.
    pub grid: Vec<BenchCell>,
    /// Budget-1 vs budget-K convergence rows, one per hosts row whose
    /// resolved move budget exceeds one (empty on small grids).
    pub convergence: Vec<ConvergenceCell>,
}

/// One hosts row of the convergence comparison: the hotspot scenario
/// run to the same horizon under budget 1 and the row's budget.
#[derive(Clone, Debug, Serialize)]
pub struct ConvergenceCell {
    /// Simulated hosts (`hosts/4` of them start overloaded).
    pub hosts: usize,
    /// The row's resolved move budget (`> 1` by construction).
    pub budget: usize,
    /// Epochs each run was given to settle.
    pub horizon: u64,
    /// First epoch with no migration left under budget 1 (the last
    /// migration's epoch + 1; 0 = never migrated).
    pub epochs_to_balance_budget1: u64,
    /// Same, under [`ConvergenceCell::budget`] moves per epoch.
    pub epochs_to_balance: u64,
    /// Total migrations committed under budget 1.
    pub moves_budget1: usize,
    /// Total migrations committed under the row's budget — equal to
    /// `moves_budget1` when both runs found the same rebalance.
    pub moves: usize,
}

/// Build-and-run one timed sample; returns (wall seconds, events,
/// digest, per-epoch profile). Cluster construction is setup, not
/// measurement — only `Cluster::run` is inside the clock. `telemetry`
/// arms the series sampler and latency histograms, which must not
/// change the digest (asserted by the caller).
fn sample(
    hosts: usize,
    jobs: usize,
    epochs: u64,
    seed: u64,
    max_moves: usize,
    telemetry: bool,
) -> (f64, u64, String, Vec<EpochProfile>) {
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs,
        jobs,
        max_moves,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg, scenario::uniform(hosts, seed));
    cluster.enable_profiling();
    if telemetry {
        cluster.enable_series(epochs as usize);
        cluster.enable_sched_latency();
    }
    let t0 = std::time::Instant::now();
    let report = cluster.run();
    let wall = t0.elapsed().as_secs_f64();
    let events: u64 = cluster.hosts().iter().map(|m| m.events_processed()).sum();
    (wall, events, digest_report(&report), cluster.profile().to_vec())
}

/// The hotspot scenario under one move budget: epochs-to-balance (the
/// last migration's epoch + 1), total migrations, and the report
/// digest for the worker-count cross-check. The 5 ms epoch keeps the
/// convergence rows cheap even at large host counts — the measurement
/// is an epoch *count*, not a wall time, so the epoch length only has
/// to give the spin telemetry a signal.
fn converge(hosts: usize, seed: u64, max_moves: usize, horizon: u64, jobs: usize) -> (u64, usize, String) {
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: horizon,
        epoch_ms: 5,
        jobs,
        max_moves,
        ..ClusterConfig::default()
    };
    let report = Cluster::new(cfg, scenario::hotspot(hosts, seed)).run();
    let settled = report.migrations.iter().map(|m| m.epoch + 1).max().unwrap_or(0);
    (settled, report.migrations.len(), digest_report(&report))
}

/// Run the whole grid.
pub fn run(p: &BenchParams) -> ClusterBench {
    let auto = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut grid = Vec::new();
    for &hosts in &p.hosts_grid {
        let budget = p.max_moves.unwrap_or_else(|| (hosts / 8).max(1));
        let mut baseline_rate = None;
        for &jobs in &p.jobs_grid {
            // Warmup: one full, untimed run.
            let (_, events, digest, _) = sample(hosts, jobs, p.epochs, p.seed, budget, false);
            let mut timed: Vec<(f64, Vec<EpochProfile>)> = (0..p.samples.max(1))
                .map(|_| {
                    let (wall, ev, d, prof) = sample(hosts, jobs, p.epochs, p.seed, budget, false);
                    assert_eq!(ev, events, "bench runs must be deterministic");
                    assert_eq!(d, digest, "bench runs must be deterministic");
                    (wall, prof)
                })
                .collect();
            timed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("wall times are finite"));
            let (wall, profile) = timed[timed.len() / 2].clone();
            // Telemetry overhead: the same cell with the series sampler
            // and latency histograms armed must reproduce the digest
            // bit for bit; the wall-time delta is the telemetry cost.
            let mut tel_walls: Vec<f64> = (0..p.samples.max(1))
                .map(|_| {
                    let (tw, ev, d, _) = sample(hosts, jobs, p.epochs, p.seed, budget, true);
                    assert_eq!(ev, events, "telemetry must not change the simulation");
                    assert_eq!(d, digest, "telemetry must not change the report digest");
                    tw
                })
                .collect();
            tel_walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
            let tel_wall = tel_walls[tel_walls.len() / 2];
            let telemetry_overhead_pct = if wall > 0.0 {
                ((tel_wall - wall) / wall * 100.0).max(0.0)
            } else {
                0.0
            };
            let epochs_per_sec = if wall > 0.0 { p.epochs as f64 / wall } else { 0.0 };
            let rate = if wall > 0.0 { events as f64 / wall } else { 0.0 };
            if jobs == 1 {
                baseline_rate = Some(epochs_per_sec);
            }
            // Determinism across worker counts: every cell of a hosts
            // row reproduces the jobs = 1 report bit for bit.
            if let Some(first) = grid
                .iter()
                .find(|c: &&BenchCell| c.hosts == hosts)
                .map(|c: &BenchCell| c.digest.clone())
            {
                assert_eq!(
                    digest, first,
                    "digest drift at hosts={hosts} jobs={jobs} — worker count leaked into results"
                );
            }
            let ns = 1e-9;
            grid.push(BenchCell {
                hosts,
                jobs,
                effective_jobs: if jobs == 0 { auto } else { jobs },
                wall_secs_median: wall,
                epochs_per_sec,
                guest_events_per_sec: rate,
                events,
                digest,
                speedup_vs_jobs1: match baseline_rate {
                    Some(base) if base > 0.0 => epochs_per_sec / base,
                    _ => 1.0,
                },
                parallel_wall_secs: profile.iter().map(|e| e.parallel_wall_ns as f64 * ns).sum(),
                barrier_stall_secs: profile.iter().map(|e| e.barrier_stall_ns as f64 * ns).sum(),
                serial_wall_secs: profile.iter().map(|e| e.serial_wall_ns as f64 * ns).sum(),
                telemetry_overhead_pct,
                profile,
            });
        }
    }
    // Convergence rows: only meaningful where the budget beats 1.
    let mut convergence = Vec::new();
    for &hosts in &p.hosts_grid {
        let budget = p.max_moves.unwrap_or_else(|| (hosts / 8).max(1));
        if budget <= 1 {
            continue;
        }
        // `hosts/4` hot hosts need one move each; budget 1 spends an
        // epoch per move, so this horizon lets even the slow run settle.
        let horizon = (hosts / 4).max(1) as u64 + 8;
        let (e1, m1, _) = converge(hosts, p.seed, 1, horizon, 1);
        let (ek, mk, dk) = converge(hosts, p.seed, budget, horizon, 1);
        let (ek4, mk4, dk4) = converge(hosts, p.seed, budget, horizon, 4);
        assert_eq!(
            (ek, mk, &dk),
            (ek4, mk4, &dk4),
            "hosts={hosts} budget={budget}: convergence must be worker-count independent"
        );
        convergence.push(ConvergenceCell {
            hosts,
            budget,
            horizon,
            epochs_to_balance_budget1: e1,
            epochs_to_balance: ek,
            moves_budget1: m1,
            moves: mk,
        });
    }
    ClusterBench {
        epochs: p.epochs,
        seed: p.seed,
        samples: p.samples,
        available_parallelism: auto,
        grid,
        convergence,
    }
}

impl ClusterBench {
    /// Human-readable grid table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "Cluster bench — uniform scenario, {} epochs, seed {}, median of {} \
             (host advertises {} threads)",
            self.epochs, self.seed, self.samples, self.available_parallelism
        )
        .unwrap();
        writeln!(
            s,
            "{:>6} {:>5} {:>9} {:>11} {:>14} {:>8} {:>7} {:>7} {:>6} {:>18}",
            "hosts",
            "jobs",
            "wall(s)",
            "epochs/s",
            "guest ev/s",
            "speedup",
            "stall%",
            "serial%",
            "tel%",
            "digest"
        )
        .unwrap();
        for c in &self.grid {
            // Stall is idle worker-time as a share of the parallel
            // phase's total worker-time; serial is the barrier section
            // as a share of the whole run.
            let worker_secs = c.parallel_wall_secs * c.effective_jobs as f64;
            let stall_pct = if worker_secs > 0.0 {
                c.barrier_stall_secs / worker_secs * 100.0
            } else {
                0.0
            };
            let serial_pct = if c.wall_secs_median > 0.0 {
                c.serial_wall_secs / c.wall_secs_median * 100.0
            } else {
                0.0
            };
            writeln!(
                s,
                "{:>6} {:>5} {:>9.4} {:>11.1} {:>14.0} {:>7.2}x {:>6.1}% {:>6.1}% {:>5.1}% {:>18}",
                c.hosts,
                c.jobs,
                c.wall_secs_median,
                c.epochs_per_sec,
                c.guest_events_per_sec,
                c.speedup_vs_jobs1,
                stall_pct,
                serial_pct,
                c.telemetry_overhead_pct,
                c.digest,
            )
            .unwrap();
        }
        if !self.convergence.is_empty() {
            writeln!(
                s,
                "\nConvergence — hotspot scenario, epochs until the cluster stops migrating"
            )
            .unwrap();
            writeln!(
                s,
                "{:>6} {:>7} {:>8} {:>17} {:>17} {:>7}",
                "hosts", "budget", "horizon", "settle@budget=1", "settle@budget", "moves"
            )
            .unwrap();
            for c in &self.convergence {
                writeln!(
                    s,
                    "{:>6} {:>7} {:>8} {:>17} {:>17} {:>7}",
                    c.hosts,
                    c.budget,
                    c.horizon,
                    c.epochs_to_balance_budget1,
                    c.epochs_to_balance,
                    c.moves,
                )
                .unwrap();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal grid cell: determinism assertions inside `run` are the
    /// real test payload (digest drift or event-count drift panics).
    #[test]
    fn tiny_grid_is_deterministic_and_self_checking() {
        let bench = run(&BenchParams {
            hosts_grid: vec![2],
            jobs_grid: vec![1, 2],
            epochs: 2,
            samples: 1,
            ..BenchParams::default()
        });
        assert_eq!(bench.grid.len(), 2);
        assert_eq!(bench.grid[0].digest, bench.grid[1].digest);
        assert!(bench.grid.iter().all(|c| c.events > 0));
        assert!((bench.grid[0].speedup_vs_jobs1 - 1.0).abs() < 1e-9);
        // Every epoch of the median run is attributed, and attribution
        // is internally consistent (stall derives from the other two).
        for c in &bench.grid {
            assert_eq!(c.profile.len(), 2, "one profile row per epoch");
            for (i, e) in c.profile.iter().enumerate() {
                assert_eq!(e.epoch, i as u64);
                assert_eq!(
                    e.barrier_stall_ns,
                    (c.effective_jobs as u64)
                        .saturating_mul(e.parallel_wall_ns)
                        .saturating_sub(e.worker_busy_ns)
                );
            }
            assert!(c.parallel_wall_secs > 0.0);
            assert!(c.telemetry_overhead_pct >= 0.0);
        }
        // hosts < 8 resolves to budget 1 — no convergence row.
        assert!(bench.convergence.is_empty());
    }

    /// A 16-host row resolves to budget 2 and must settle the hotspot
    /// scenario strictly faster than the single-move driver while
    /// committing the same rebalance (one shed gang per hot host).
    #[test]
    fn convergence_row_shows_budget_speedup() {
        let bench = run(&BenchParams {
            hosts_grid: vec![16],
            jobs_grid: vec![1],
            epochs: 1,
            samples: 1,
            ..BenchParams::default()
        });
        assert_eq!(bench.convergence.len(), 1);
        let c = &bench.convergence[0];
        assert_eq!((c.hosts, c.budget), (16, 2));
        assert!(
            c.moves_budget1 > 0 && c.moves > 0,
            "hotspot must force migrations: {c:?}"
        );
        assert_eq!(c.moves, c.moves_budget1, "both budgets find the same rebalance");
        assert!(
            c.epochs_to_balance < c.epochs_to_balance_budget1,
            "budget {} must settle strictly faster: {} vs {}",
            c.budget,
            c.epochs_to_balance,
            c.epochs_to_balance_budget1
        );
    }
}
