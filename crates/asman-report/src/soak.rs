//! The long-horizon soak harness (`repro soak`).
//!
//! A soak run drives the consolidation cluster for a horizon two to
//! three orders of magnitude past the other targets — `>= 100_000`
//! epochs — with a deterministic VM-churn plan layered on top, hunting
//! the class of bug that only surfaces when state outlives the window
//! it was designed for: stale slot references after tombstone reuse,
//! counter baselines that drift across migrate/depart epochs, rings or
//! retry chains that grow without bound.
//!
//! Three mechanisms keep a 100k-epoch run honest *and* affordable:
//!
//! * **Amortized auditing** — the cluster's O(registry + records)
//!   invariant auditor runs every [`SoakParams::audit_every`] epochs
//!   (plus unconditionally at the end) instead of every boundary.
//! * **Occupancy checkpoints** — at every audit boundary the driver
//!   samples [`Cluster::occupancy`], the RSS proxy: host slot tables,
//!   series-ring fill, pending retry chains. Each checkpoint asserts
//!   the bounded-memory invariant (ring fill never exceeds capacity,
//!   retry chains bounded by the move budget, slots fully accounted as
//!   resident + tombstones, registry exactly tracks admissions) and the
//!   report keeps the peaks so a slow leak is visible even when no
//!   assert fires.
//! * **Worker cross-check** — a prefix of the horizon is re-run under
//!   `jobs = 1` and `jobs = 4` and the serialized reports' digests
//!   must match byte-for-byte, extending the repo's determinism
//!   contract to churned long-horizon runs.

use asman_cluster::{
    scenario::ConsolidationSpec, Checkpoint, CheckpointConfig, ChurnPlan, Cluster, ClusterConfig,
    Occupancy, Policy,
};
use asman_sim::FaultPlan;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

use crate::cluster::digest_report;
use crate::figures::ShapeCheck;
use crate::progress;

/// Capacity of the series ring a soak run arms: large enough to hold a
/// meaningful trailing window, small enough that "ring fill is bounded"
/// is a real assertion long before the horizon ends.
pub const SOAK_SERIES_CAPACITY: usize = 4096;

/// Parameters of a soak run.
#[derive(Clone, Debug)]
pub struct SoakParams {
    /// Host count.
    pub hosts: usize,
    /// Gang VMs consolidated on host 0 at the start.
    pub gangs: usize,
    /// Epochs to run (the soak horizon).
    pub epochs: u64,
    /// Epoch length in milliseconds. The soak default is much shorter
    /// than the experiment targets': a soak exercises epoch-boundary
    /// *logic* per unit of wall time, not per-epoch guest behavior.
    pub epoch_ms: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the main run (0 = one per core).
    pub jobs: usize,
    /// Resolved churn plan (may be empty for a churn-free soak).
    pub churn: ChurnPlan,
    /// Audit + occupancy-checkpoint cadence in epochs.
    pub audit_every: u64,
    /// Epochs of the jobs-1-vs-4 determinism cross-check prefix
    /// (clamped to the horizon).
    pub crosscheck_epochs: u64,
    /// Emit a checkpoint artifact every N epochs into
    /// [`SoakParams::ckpt_dir`] (0 = off).
    pub checkpoint_every: u64,
    /// Directory for `CKPT_<epoch>.json` artifacts.
    pub ckpt_dir: Option<PathBuf>,
    /// Resume from this checkpoint: the run replays to the checkpoint
    /// epoch, proves the replay reconverged, applies the artifact's
    /// control state authoritatively, and continues to the horizon —
    /// byte-identical to the uninterrupted run.
    pub resume: Option<Checkpoint>,
    /// Per-epoch migration budget (`--max-moves`; 1 = the historical
    /// single-chain driver).
    pub max_moves: usize,
}

impl Default for SoakParams {
    fn default() -> Self {
        SoakParams {
            hosts: 3,
            gangs: 2,
            epochs: 100_000,
            epoch_ms: 5,
            seed: 42,
            jobs: 0,
            churn: ChurnPlan::empty(),
            audit_every: 1_000,
            crosscheck_epochs: 2_000,
            checkpoint_every: 0,
            ckpt_dir: None,
            resume: None,
            max_moves: 1,
        }
    }
}

impl SoakParams {
    /// The rebuild recipe a checkpoint of this soak carries — also the
    /// *only* path the soak builds clusters through, so resume is
    /// guaranteed to reconstruct exactly what the original run had.
    pub fn checkpoint_config(&self, epochs: u64) -> CheckpointConfig {
        let d = ClusterConfig::default();
        CheckpointConfig {
            scenario: ConsolidationSpec {
                hosts: self.hosts,
                gangs: self.gangs,
                seed: self.seed,
                ..ConsolidationSpec::default()
            },
            epoch_ms: self.epoch_ms,
            epochs,
            policy: Policy::VcrdAware,
            cooldown_epochs: d.cooldown_epochs,
            retry_cap: d.retry_cap,
            audit_every: self.audit_every,
            model: d.model,
            faults: FaultPlan::empty(),
            churn: self.churn.clone(),
            // A soak is exactly the workload slot reuse exists for:
            // without it, host slot tables grow with every arrival.
            slot_reuse: true,
            series_capacity: SOAK_SERIES_CAPACITY,
            max_moves: self.max_moves,
        }
    }

    fn cluster(&self, epochs: u64, jobs: usize) -> Cluster {
        self.checkpoint_config(epochs).build_cluster(jobs)
    }
}

/// One occupancy checkpoint, taken at an audit boundary.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SoakCheckpoint {
    /// Epochs completed when the sample was taken.
    pub epoch: u64,
    /// The occupancy sample.
    pub occupancy: Occupancy,
}

/// The soak run's full result.
#[derive(Clone, Debug, Serialize)]
pub struct SoakReport {
    /// Horizon actually run.
    pub epochs: u64,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Base seed.
    pub seed: u64,
    /// The churn plan's event counts (the plan itself is in the
    /// embedded cluster report when churn was armed).
    pub churn_arrivals_planned: usize,
    /// Planned departures.
    pub churn_departures_planned: usize,
    /// Every occupancy checkpoint, in epoch order.
    pub checkpoints: Vec<SoakCheckpoint>,
    /// Peak host-slot-table total over all checkpoints.
    pub peak_slots: usize,
    /// Peak resident VM count over all checkpoints.
    pub peak_resident: usize,
    /// Peak tombstone count over all checkpoints.
    pub peak_tombstones: usize,
    /// Digest of the main run's cluster report.
    pub digest: String,
    /// Digest of the `jobs = 1` cross-check prefix.
    pub crosscheck_digest_jobs1: String,
    /// Digest of the `jobs = 4` cross-check prefix.
    pub crosscheck_digest_jobs4: String,
    /// Epochs the cross-check prefix covered.
    pub crosscheck_epochs: u64,
    /// The main run's cluster report (migrations, churn outcome,
    /// per-VM rows with departed VMs' frozen accounting).
    pub report: asman_cluster::ClusterReport,
}

impl SoakReport {
    /// True when the determinism cross-check held.
    pub fn jobs_identical(&self) -> bool {
        self.crosscheck_digest_jobs1 == self.crosscheck_digest_jobs4
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "soak: {} epochs x {} ms, seed {}, {} hosts",
            self.epochs,
            self.epoch_ms,
            self.seed,
            self.report.hosts,
        );
        if let Some(ch) = &self.report.churn {
            let _ = writeln!(
                s,
                "churn: {} arrivals ({} rejected), {} departures ({} skipped), \
                 {} resident at end, {} departed having finished",
                ch.arrivals,
                ch.arrivals_rejected,
                ch.departures,
                ch.departures_skipped,
                ch.resident_end,
                ch.departed_finished,
            );
        } else {
            let _ = writeln!(s, "churn: none (static population)");
        }
        let _ = writeln!(
            s,
            "occupancy: {} checkpoints; peak slots {}, peak resident {}, \
             peak tombstones {}, series ring <= {}",
            self.checkpoints.len(),
            self.peak_slots,
            self.peak_resident,
            self.peak_tombstones,
            SOAK_SERIES_CAPACITY,
        );
        let _ = writeln!(
            s,
            "migrations: {} committed over the horizon",
            self.report.migrations.len(),
        );
        let _ = writeln!(
            s,
            "jobs cross-check over {} epochs: {}",
            self.crosscheck_epochs,
            if self.jobs_identical() {
                "1 and 4 workers bit-identical"
            } else {
                "FAILED — digests depend on worker count"
            },
        );
        let _ = write!(s, "digest: {}", self.digest);
        s
    }

    /// Shape checks in the repo's standard pass/fail form.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let last = self.checkpoints.last();
        vec![
            ShapeCheck::new(
                "soak horizon completed",
                self.report.epochs == self.epochs,
                format!("{} of {} epochs", self.report.epochs, self.epochs),
            ),
            ShapeCheck::new(
                "series ring bounded",
                self.checkpoints
                    .iter()
                    .all(|c| c.occupancy.series_len <= SOAK_SERIES_CAPACITY),
                format!(
                    "max fill {} of {}",
                    self.checkpoints
                        .iter()
                        .map(|c| c.occupancy.series_len)
                        .max()
                        .unwrap_or(0),
                    SOAK_SERIES_CAPACITY,
                ),
            ),
            ShapeCheck::new(
                "slot tables bounded by population",
                last.is_none_or(|c| {
                    c.occupancy.slots == c.occupancy.resident + c.occupancy.tombstones
                }),
                format!(
                    "final slots {} = resident {} + tombstones {}",
                    last.map_or(0, |c| c.occupancy.slots),
                    last.map_or(0, |c| c.occupancy.resident),
                    last.map_or(0, |c| c.occupancy.tombstones),
                ),
            ),
            ShapeCheck::new(
                "jobs 1 vs 4 bit-identical",
                self.jobs_identical(),
                format!(
                    "{} vs {}",
                    self.crosscheck_digest_jobs1, self.crosscheck_digest_jobs4
                ),
            ),
        ]
    }
}

/// Run the soak: the full horizon under the requested worker count with
/// amortized audits and occupancy checkpoints, then the jobs-1-vs-4
/// determinism prefix. Panics (with the offending epoch) the moment a
/// bounded-memory invariant breaks — a soak that limps on after a leak
/// would bury the first failure under a hundred thousand more epochs.
pub fn run(p: &SoakParams) -> SoakReport {
    let mut c = p.cluster(p.epochs, p.jobs);
    let initial = c.vm_count() as u64;
    let max_moves = p.max_moves;
    let mut checkpoints = Vec::new();
    let take = |c: &Cluster, epoch: u64, checkpoints: &mut Vec<SoakCheckpoint>| {
        let occ = c.occupancy();
        let (arrivals, ..) = c.churn_counts();
        // The bounded-memory invariant, checked while the run is still
        // cheap to bisect. Registry growth tracks admissions exactly;
        // everything else must be flat in the horizon.
        assert_eq!(
            occ.registry as u64,
            initial + arrivals,
            "epoch {epoch}: registry leaked entries"
        );
        assert_eq!(
            occ.slots,
            occ.resident + occ.tombstones,
            "epoch {epoch}: slot table holds unaccounted slots"
        );
        assert!(
            occ.pending_retries <= max_moves,
            "epoch {epoch}: retry chains accumulated past the move budget"
        );
        assert!(
            occ.series_len <= SOAK_SERIES_CAPACITY,
            "epoch {epoch}: series ring overflowed its capacity"
        );
        checkpoints.push(SoakCheckpoint { epoch, occupancy: occ });
    };
    for epoch in 0..p.epochs {
        c.run_epoch();
        let done = epoch + 1;
        // Resume: the loop above IS the replay. At the checkpoint's
        // boundary, prove the replay reconverged, then apply the
        // artifact's control state authoritatively — making every
        // serialized field load-bearing for the continuation.
        if let Some(ck) = p.resume.as_ref().filter(|ck| ck.state.epoch == done) {
            let errs = ck.validate(&c);
            assert!(
                errs.is_empty(),
                "resume: replay diverged from the checkpoint at epoch {done}:\n  {}",
                errs.join("\n  ")
            );
            ck.apply(&mut c);
            progress!("resume: checkpoint validated and applied at epoch {done}");
        }
        // Checkpoints are (re-)emitted at every boundary, including
        // those replayed on resume, so a resumed run's artifact
        // directory is `diff -r`-identical to the straight-through
        // run's.
        if p.checkpoint_every != 0 && done % p.checkpoint_every == 0 {
            if let Some(dir) = &p.ckpt_dir {
                let ck = Checkpoint::capture(&c, p.checkpoint_config(p.epochs));
                let path = crate::checkpoint::write_checkpoint(dir, &ck)
                    .expect("write checkpoint artifact");
                progress!("wrote {}", path.display());
            }
        }
        if done % p.audit_every == 0 {
            take(&c, done, &mut checkpoints);
        }
    }
    // End-of-run audit is unconditional, as in [`Cluster::run`].
    c.audit_check();
    let report = c.report();
    if checkpoints.last().is_none_or(|ck| ck.epoch != p.epochs) {
        take(&c, p.epochs, &mut checkpoints);
    }
    let digest = digest_report(&report);

    // Determinism prefix: the same soak under 1 and 4 workers.
    let crosscheck_epochs = p.crosscheck_epochs.min(p.epochs);
    let prefix = |jobs: usize| {
        let mut c = p.cluster(crosscheck_epochs, jobs);
        digest_report(&c.run())
    };
    let crosscheck_digest_jobs1 = prefix(1);
    let crosscheck_digest_jobs4 = prefix(4);

    let peak = |f: fn(&Occupancy) -> usize| {
        checkpoints.iter().map(|c| f(&c.occupancy)).max().unwrap_or(0)
    };
    SoakReport {
        epochs: p.epochs,
        epoch_ms: p.epoch_ms,
        seed: p.seed,
        churn_arrivals_planned: p.churn.arrivals(),
        churn_departures_planned: p.churn.departures(),
        peak_slots: peak(|o| o.slots),
        peak_resident: peak(|o| o.resident),
        peak_tombstones: peak(|o| o.tombstones),
        checkpoints,
        digest,
        crosscheck_digest_jobs1,
        crosscheck_digest_jobs4,
        crosscheck_epochs,
        report,
    }
}
