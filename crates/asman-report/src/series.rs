//! The time-series telemetry report (`repro series`).
//!
//! Re-runs the consolidation cluster of `repro cluster` with the
//! telemetry layer armed — the per-epoch [`SeriesSampler`] ring in the
//! cluster driver's serial barrier, plus scheduler-latency histograms
//! on every host — and renders what an operator watching the cluster
//! would have seen: an epoch × metric sparkline timeline per policy, a
//! trailing-window Nσ anomaly pass (wasted-spin and VCRD-HIGH deltas,
//! flagged with epoch and host), per-host scheduler-latency quantiles,
//! and a reaction-latency summary (epochs from the first VCRD-HIGH
//! spike to the first migration).
//!
//! Everything serialized into `CLUSTER_series_<policy>.json` is
//! simulation-derived — epoch samples are captured in the serial
//! barrier and latency histograms observe only simulated cycles — so
//! the artifact is byte-identical for every `--jobs` value, clean or
//! faulted. Wall-clock self-profiling deliberately lives elsewhere
//! (`repro cluster --bench`), where bit-identity is not promised.

use asman_cluster::{scenario, Policy};
use asman_sim::{detect_anomalies, sparkline, Anomaly, EpochSample};
use serde::Serialize;
use std::fmt::Write as _;

use crate::cluster::ClusterParams;
use crate::exec::SweepRunner;

/// Default trailing-window length (epochs) for the anomaly pass.
pub const DEFAULT_WINDOW: usize = 4;

/// Default Nσ threshold for the anomaly pass.
pub const DEFAULT_NSIGMA: f64 = 3.0;

/// Parameters of the series report: the cluster experiment plus the
/// anomaly pass knobs.
#[derive(Clone, Debug)]
pub struct SeriesParams {
    /// The underlying cluster experiment.
    pub cluster: ClusterParams,
    /// Trailing-window length in epochs for the anomaly pass.
    pub window: usize,
    /// Flag a sample when it exceeds the trailing mean by this many σ.
    pub nsigma: f64,
}

impl Default for SeriesParams {
    fn default() -> Self {
        SeriesParams {
            cluster: ClusterParams::default(),
            window: DEFAULT_WINDOW,
            nsigma: DEFAULT_NSIGMA,
        }
    }
}

/// Per-host scheduler-latency summary, in cycles. Quantiles come from
/// the host's streaming [`asman_sim::QuantileHist`]s over simulated
/// time, so they are deterministic.
#[derive(Clone, Debug, Serialize)]
pub struct HostLatency {
    /// Host index.
    pub host: usize,
    /// vCPU wakeup→dispatch observations.
    pub wake_count: u64,
    /// Median wakeup→dispatch latency in cycles.
    pub wake_p50: f64,
    /// 99th-percentile wakeup→dispatch latency in cycles.
    pub wake_p99: f64,
    /// Preemption-hold observations (runnable-after-preempt durations).
    pub preempt_count: u64,
    /// Median preemption-hold duration in cycles.
    pub preempt_p50: f64,
    /// 99th-percentile preemption-hold duration in cycles.
    pub preempt_p99: f64,
}

/// One policy's telemetry outcome.
#[derive(Clone, Debug, Serialize)]
pub struct PolicySeries {
    /// Policy label.
    pub policy: &'static str,
    /// Epochs the sampler observed (== epochs run).
    pub sampled_epochs: u64,
    /// Epochs evicted from the ring (0 unless capacity < epochs).
    pub dropped_epochs: u64,
    /// The per-epoch samples, oldest first.
    pub samples: Vec<EpochSample>,
    /// Anomaly-pass flags, sorted by (epoch, host, metric).
    pub anomalies: Vec<Anomaly>,
    /// Per-host scheduler-latency quantiles.
    pub latency: Vec<HostLatency>,
    /// Epoch of the first VCRD-HIGH spike on any host, if any.
    pub first_spike_epoch: Option<u64>,
    /// Epoch of the first committed migration, if any.
    pub first_migration_epoch: Option<u64>,
    /// Epochs from spike to first migration (the policy's reaction
    /// latency); `None` if it never reacted.
    pub reaction_epochs: Option<u64>,
}

/// The full series report: one [`PolicySeries`] per requested policy.
#[derive(Clone, Debug, Serialize)]
pub struct SeriesReport {
    /// Host count.
    pub hosts: usize,
    /// Gangs consolidated on host 0.
    pub gangs: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Anomaly-pass trailing window (epochs).
    pub window: usize,
    /// Anomaly-pass Nσ threshold.
    pub nsigma: f64,
    /// Per-policy outcomes, in parameter order.
    pub outcomes: Vec<PolicySeries>,
}

fn quantiles(h: &asman_sim::QuantileHist) -> (u64, f64, f64) {
    (
        h.count(),
        h.quantile(0.50).unwrap_or(0.0),
        h.quantile(0.99).unwrap_or(0.0),
    )
}

/// Run one policy cell with telemetry armed.
fn run_cell(p: &SeriesParams, policy: Policy) -> PolicySeries {
    let mut cluster =
        scenario::consolidation_cluster(p.cluster.cluster_config(policy), &p.cluster.scenario_spec());
    cluster.enable_series(p.cluster.epochs as usize);
    cluster.enable_sched_latency();
    let report = cluster.run();
    let sampler = cluster.series().expect("series enabled above");
    let samples: Vec<EpochSample> = sampler.samples().cloned().collect();
    let anomalies = detect_anomalies(&samples, p.window, p.nsigma);
    let latency = cluster
        .hosts()
        .iter()
        .enumerate()
        .map(|(host, m)| {
            let lat = m.sched_latency().expect("latency enabled above");
            let (wake_count, wake_p50, wake_p99) = quantiles(&lat.wake_to_dispatch);
            let (preempt_count, preempt_p50, preempt_p99) = quantiles(&lat.preempt_hold);
            HostLatency {
                host,
                wake_count,
                wake_p50,
                wake_p99,
                preempt_count,
                preempt_p50,
                preempt_p99,
            }
        })
        .collect();
    let first_spike_epoch = samples
        .iter()
        .find(|s| s.hosts.iter().any(|h| h.vcrd_high_delta > 0))
        .map(|s| s.epoch);
    let first_migration_epoch = report.migrations.first().map(|m| m.epoch);
    let reaction_epochs = match (first_spike_epoch, first_migration_epoch) {
        (Some(s), Some(m)) => m.checked_sub(s),
        _ => None,
    };
    PolicySeries {
        policy: policy.label(),
        sampled_epochs: sampler.seen(),
        dropped_epochs: sampler.dropped(),
        samples,
        anomalies,
        latency,
        first_spike_epoch,
        first_migration_epoch,
        reaction_epochs,
    }
}

/// Run the series report: every requested policy as an independent
/// sweep cell, bit-identical for any worker count.
pub fn run(p: &SeriesParams) -> SeriesReport {
    let outcomes = SweepRunner::new(p.cluster.jobs)
        .map(p.cluster.policies.clone(), |policy| run_cell(p, policy));
    SeriesReport {
        hosts: p.cluster.hosts,
        gangs: p.cluster.gangs,
        epochs: p.cluster.epochs,
        seed: p.cluster.seed,
        window: p.window,
        nsigma: p.nsigma,
        outcomes,
    }
}

/// The host metrics the timeline renders, in row order.
const TIMELINE_METRICS: [asman_sim::HostMetric; 3] = [
    ("runnable", |h| h.runnable_vcpus as f64),
    ("spin_delta", |h| h.spin_delta as f64),
    ("vcrd_high", |h| h.vcrd_high_delta as f64),
];

impl SeriesReport {
    /// Human-readable timeline: per policy, an epoch × metric sparkline
    /// table, the anomaly flags, latency quantiles and the reaction
    /// summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "Cluster series — {} hosts, {} gangs on host 0, {} epochs, seed {}; \
             anomaly pass: {}σ over trailing {} epochs",
            self.hosts, self.gangs, self.epochs, self.seed, self.nsigma, self.window
        )
        .unwrap();
        for o in &self.outcomes {
            writeln!(
                s,
                "\n[{}] epoch timeline ({} epochs sampled{})",
                o.policy,
                o.sampled_epochs,
                if o.dropped_epochs > 0 {
                    format!(", {} evicted from ring", o.dropped_epochs)
                } else {
                    String::new()
                }
            )
            .unwrap();
            for host in 0..self.hosts {
                for (name, f) in TIMELINE_METRICS {
                    let vals: Vec<f64> = o
                        .samples
                        .iter()
                        .map(|e| e.hosts.get(host).map(f).unwrap_or(0.0))
                        .collect();
                    let (lo, hi) = vals
                        .iter()
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                            (lo.min(v), hi.max(v))
                        });
                    writeln!(
                        s,
                        "  host{host} {name:>10} |{}| {:.0}..{:.0}",
                        sparkline(&vals),
                        if lo.is_finite() { lo } else { 0.0 },
                        if hi.is_finite() { hi } else { 0.0 },
                    )
                    .unwrap();
                }
            }
            let inflight: Vec<f64> = o
                .samples
                .iter()
                .map(|e| e.migrations_in_flight as f64)
                .collect();
            writeln!(s, "  {:>16} |{}|", "in-flight", sparkline(&inflight)).unwrap();
            for a in &o.anomalies {
                writeln!(
                    s,
                    "  ANOMALY epoch {} host{} {}: {:.0} vs mean {:.1} (σ {:.1})",
                    a.epoch, a.host, a.metric, a.value, a.mean, a.sigma
                )
                .unwrap();
            }
            for l in &o.latency {
                writeln!(
                    s,
                    "  host{} latency: wake→dispatch p50 {:.0} / p99 {:.0} cycles ({} obs), \
                     preempt-hold p50 {:.0} / p99 {:.0} cycles ({} obs)",
                    l.host, l.wake_p50, l.wake_p99, l.wake_count, l.preempt_p50, l.preempt_p99,
                    l.preempt_count
                )
                .unwrap();
            }
            match (o.first_spike_epoch, o.reaction_epochs) {
                (Some(spike), Some(r)) => writeln!(
                    s,
                    "  reaction: {} epoch(s) from VCRD-HIGH spike (epoch {}) to first migration",
                    r, spike
                )
                .unwrap(),
                (Some(spike), None) => writeln!(
                    s,
                    "  reaction: never migrated after VCRD-HIGH spike at epoch {spike}"
                )
                .unwrap(),
                (None, _) => writeln!(s, "  reaction: no VCRD-HIGH spike observed").unwrap(),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::FaultPlan;

    fn small() -> SeriesParams {
        SeriesParams {
            cluster: ClusterParams {
                epochs: 6,
                jobs: 1,
                ..ClusterParams::default()
            },
            ..SeriesParams::default()
        }
    }

    #[test]
    fn series_samples_every_epoch_and_detects_the_reaction() {
        let rep = run(&small());
        assert_eq!(rep.outcomes.len(), 3);
        for o in &rep.outcomes {
            assert_eq!(o.sampled_epochs, 6);
            assert_eq!(o.dropped_epochs, 0);
            assert_eq!(o.samples.len(), 6);
            for (i, e) in o.samples.iter().enumerate() {
                assert_eq!(e.epoch, i as u64);
                assert_eq!(e.hosts.len(), rep.hosts);
            }
            assert!(
                o.latency.iter().any(|l| l.wake_count > 0),
                "{}: wakeup→dispatch histograms must observe",
                o.policy
            );
        }
        let aware = rep.outcomes.iter().find(|o| o.policy == "vcrd-aware").unwrap();
        assert_eq!(aware.first_spike_epoch, Some(0), "host 0 is overloaded from epoch 0");
        assert!(aware.reaction_epochs.is_some(), "vcrd-aware must react to the spike");
        let stat = rep.outcomes.iter().find(|o| o.policy == "static").unwrap();
        assert_eq!(stat.first_migration_epoch, None, "static never migrates");
    }

    #[test]
    fn series_artifacts_are_worker_count_independent() {
        let seq = run(&small());
        let mut p = small();
        p.cluster.jobs = 4;
        let par = run(&p);
        let bytes = |r: &SeriesReport| serde_json::to_string(r).unwrap();
        assert_eq!(bytes(&seq), bytes(&par), "series must be byte-identical across jobs");
    }

    #[test]
    fn faulted_series_reports_crash_and_stays_jobs_independent() {
        let mut p = small();
        p.cluster.faults = FaultPlan::parse("abort@0,crash@4:h1").unwrap();
        let seq = run(&p);
        let aware = seq.outcomes.iter().find(|o| o.policy == "vcrd-aware").unwrap();
        let last = aware.samples.last().unwrap();
        assert!(last.hosts[1].crashed, "host 1 crashed at epoch 4");
        assert_eq!(last.hosts[1].resident_vms, 0, "refugees re-placed elsewhere");
        assert!(last.aborts >= 1);
        assert!(last.evacuations >= 1);
        let mut p4 = p.clone();
        p4.cluster.jobs = 4;
        let par = run(&p4);
        let bytes = |r: &SeriesReport| serde_json::to_string(r).unwrap();
        assert_eq!(bytes(&seq), bytes(&par));
    }

    #[test]
    fn render_carries_sparkline_rows_and_reaction_line() {
        let rep = run(&small());
        let text = rep.render();
        assert!(text.contains("spin_delta"), "{text}");
        assert!(text.contains("reaction:"), "{text}");
        assert!(text.contains("wake→dispatch p50"), "{text}");
    }
}
