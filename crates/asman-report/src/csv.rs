//! Plotting-ready CSV export of the figure series.
//!
//! The JSON artifacts carry everything; these flat CSV views are what a
//! gnuplot/matplotlib script actually wants — one row per point.

use std::fmt::Write as _;

use crate::figures::fig11::Combination;
use crate::figures::{fig01::Fig01, fig02::Scatter, fig07::Fig07, fig09::Fig09, fig10::Fig10};
use crate::multivm::MultiVmRow;

/// Escape a CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Figure 1 rows: `rate_pct,run_secs,window_locks,over_2_10,over_2_20`.
pub fn fig01_csv(f: &Fig01) -> String {
    let mut out = String::from("rate_pct,run_secs,window_locks,over_2_10,over_2_20\n");
    for r in &f.rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.rate_pct, r.run_secs, r.window_locks, r.over_2_10, r.over_2_20
        );
    }
    out
}

/// Scatter panels: `rate_pct,index,wait_cycles` (Figures 2 and 8).
pub fn scatter_csv(s: &Scatter) -> String {
    let mut out = String::from("rate_pct,index,wait_cycles\n");
    for p in &s.panels {
        for (i, w) in p.waits.iter().enumerate() {
            let _ = writeln!(out, "{},{},{}", p.rate_pct, i, w);
        }
    }
    out
}

/// Figure 7 rows: `rate_pct,credit_secs,asman_secs,vcrd_raises,high_frac`.
pub fn fig07_csv(f: &Fig07) -> String {
    let mut out = String::from("rate_pct,credit_secs,asman_secs,vcrd_raises,high_frac\n");
    for r in &f.rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.rate_pct, r.credit_secs, r.asman_secs, r.vcrd_raises, r.vcrd_high_frac
        );
    }
    out
}

/// Figure 9 cells: `bench,rate_pct,credit_slowdown,asman_slowdown`.
pub fn fig09_csv(f: &Fig09) -> String {
    let mut out = String::from("bench,rate_pct,credit_slowdown,asman_slowdown\n");
    for c in &f.cells {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            field(c.bench),
            c.rate_pct,
            c.credit,
            c.asman
        );
    }
    out
}

/// Figure 10 points: `rate_pct,warehouses,sched,bops`.
pub fn fig10_csv(f: &Fig10) -> String {
    let mut out = String::from("rate_pct,warehouses,sched,bops\n");
    for p in &f.panels {
        for pt in &p.credit {
            let _ = writeln!(out, "{},{},Credit,{}", p.rate_pct, pt.warehouses, pt.bops);
        }
        for pt in &p.asman {
            let _ = writeln!(out, "{},{},ASMan,{}", p.rate_pct, pt.warehouses, pt.bops);
        }
    }
    out
}

/// Multi-VM combination: `combination,vm,workload,sched,mean_round_secs,cov`.
pub fn combination_csv(c: &Combination) -> String {
    let mut out = String::from("combination,vm,workload,sched,mean_round_secs,cov\n");
    let mut push = |rows: &[MultiVmRow], sched: &str| {
        for r in rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                field(&c.label),
                r.vm,
                field(&r.workload),
                sched,
                r.mean_round_secs,
                r.cov
            );
        }
    };
    push(&c.credit, "Credit");
    push(&c.asman, "ASMan");
    push(&c.con, "CON");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig01::Fig01Row;

    #[test]
    fn fig01_roundtrip_shape() {
        let f = Fig01 {
            rows: vec![Fig01Row {
                rate_pct: 22.2,
                run_secs: 376.2,
                window_locks: 100,
                over_2_10: 10,
                over_2_20: 3,
            }],
            window_secs: 30,
        };
        let csv = fig01_csv(&f);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "rate_pct,run_secs,window_locks,over_2_10,over_2_20"
        );
        assert_eq!(lines.next().unwrap(), "22.2,376.2,100,10,3");
        assert!(lines.next().is_none());
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("he said \"hi\""), "\"he said \"\"hi\"\"\"");
    }
}
