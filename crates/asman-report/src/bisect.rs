//! Divergence bisection (`repro bisect`).
//!
//! Given two run configurations A and B whose final digests disagree —
//! different seed, policy, fault/churn plan, or an injected behavioral
//! mutation via the audit hooks — the bisector binary-searches over
//! epoch boundaries for the *first* epoch whose post-boundary
//! [`Cluster::state_digest`] differs, then re-runs the two sides with
//! the flight recorder armed and reports the first divergent flight
//! event in context.
//!
//! The search exploits the simulator's determinism twice over: a probe
//! at epoch `m` is a fresh replay of each side from epoch 0 (no state
//! is kept between probes, so probes cannot contaminate each other),
//! and because divergence is causal — once the states differ, the
//! schedules they produce differ — prefix agreement is monotone and
//! binary search is sound. The mutation self-tests cross-check the
//! search against a linear scan to keep that argument honest.

use asman_cluster::{checkpoint::diff_states, CheckpointConfig, Cluster};
use asman_sim::{merge_streams, CatMask, FlightEvent};

/// Flight-ring capacity per host/category for the divergence capture.
/// Bisect windows are short (one binary search narrows to a single
/// epoch), so a modest ring never truncates the interesting tail.
const BISECT_TRACE_CAPACITY: usize = 50_000;

/// Flight events printed around the first divergent one.
const CONTEXT_EVENTS: usize = 3;

/// A canned behavioral mutation injected into side B — the "mutated
/// binary" of the test battery, without needing a second binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// The migration cost model undercounts dirty pages (halves the
    /// dirtying rate), so every migration of side B copies fewer pages
    /// and pauses shorter. A config-level mutation, available in every
    /// build; diverges at side A's first migration epoch. (The
    /// engine-level `audit_inject_dirty_undercount` hook is *not* used
    /// here: it exists as an auditor self-test and the auditor catches
    /// it by design, aborting the run instead of diverging silently.)
    DirtyUndercount,
    /// Host 0's scheduler silently skips the BOOST priority tier, via
    /// the engine's audit hook (requires a `--features audit` build).
    BoostSkip,
}

impl Mutation {
    /// Parse a `--b-mutate` value.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "dirty-undercount" => Some(Mutation::DirtyUndercount),
            "boost-skip" => Some(Mutation::BoostSkip),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::DirtyUndercount => "dirty-undercount",
            Mutation::BoostSkip => "boost-skip",
        }
    }

    /// Whether this build can inject the mutation.
    pub fn available(&self) -> bool {
        match self {
            Mutation::DirtyUndercount => true,
            Mutation::BoostSkip => cfg!(feature = "audit"),
        }
    }
}

/// Parameters of a bisection.
#[derive(Clone, Debug)]
pub struct BisectParams {
    /// Side A's full run configuration.
    pub a: CheckpointConfig,
    /// Side B's full run configuration (often A with one knob turned).
    pub b: CheckpointConfig,
    /// Worker threads for cluster epochs (results are identical for
    /// every value; this only affects probe wall time).
    pub jobs: usize,
    /// Behavioral mutation injected into side B's engines.
    pub mutate: Option<Mutation>,
}

/// The bisection's result.
#[derive(Clone, Debug)]
pub struct BisectOutcome {
    /// Horizon compared (the smaller of the two configs').
    pub epochs: u64,
    /// Side A's state digest at the horizon.
    pub digest_a: u64,
    /// Side B's state digest at the horizon.
    pub digest_b: u64,
    /// First epoch whose post-boundary digests differ; `None` when the
    /// runs are identical end to end.
    pub first_divergent_epoch: Option<u64>,
    /// Digest probes spent (each probe replays both sides).
    pub probes: u64,
    /// Field-level state mismatches at the divergent boundary.
    pub mismatches: Vec<String>,
    /// The first divergent flight event, rendered as `A: ... / B: ...`.
    pub first_event: Option<(String, String)>,
    /// Index of the first divergent event in the merged streams.
    pub first_event_index: Option<usize>,
    /// Side A's merged stream around the divergence, rendered.
    pub context: Vec<String>,
}

impl BisectOutcome {
    /// True when the two runs were bit-identical.
    pub fn identical(&self) -> bool {
        self.first_divergent_epoch.is_none()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "bisect: {} epochs, digest A {:016x} vs B {:016x} ({} probes)",
            self.epochs, self.digest_a, self.digest_b, self.probes
        );
        match self.first_divergent_epoch {
            None => {
                let _ = write!(s, "runs are bit-identical — nothing to bisect");
            }
            Some(e) => {
                let _ = writeln!(s, "first divergent epoch: {e}");
                for m in self.mismatches.iter().take(10) {
                    let _ = writeln!(s, "  {m}");
                }
                if self.mismatches.len() > 10 {
                    let _ = writeln!(s, "  ... and {} more", self.mismatches.len() - 10);
                }
                if let (Some(i), Some((a, b))) = (self.first_event_index, &self.first_event) {
                    let _ = writeln!(s, "first divergent flight event (index {i}):");
                    let _ = writeln!(s, "  A: {a}");
                    let _ = writeln!(s, "  B: {b}");
                    let _ = writeln!(s, "context (side A):");
                    for line in &self.context {
                        let _ = writeln!(s, "  {line}");
                    }
                }
                let _ = write!(s, "exit: divergence confirmed");
            }
        }
        s
    }
}

fn build(cfg: &CheckpointConfig, jobs: usize, mutate: Option<Mutation>) -> Cluster {
    let mut cfg = cfg.clone();
    if mutate == Some(Mutation::DirtyUndercount) {
        cfg.model.dirty_pages_per_mcycle /= 2;
    }
    let mut c = cfg.build_cluster(jobs);
    if mutate == Some(Mutation::BoostSkip) {
        inject_boost_skip(&mut c);
    }
    c
}

#[cfg(feature = "audit")]
fn inject_boost_skip(c: &mut Cluster) {
    c.audit_inject_boost_skip(0);
}

#[cfg(not(feature = "audit"))]
fn inject_boost_skip(_c: &mut Cluster) {
    unreachable!("boost-skip requires a build with --features audit")
}

fn digest_at(cfg: &CheckpointConfig, jobs: usize, mutate: Option<Mutation>, epoch: u64) -> u64 {
    let mut c = build(cfg, jobs, mutate);
    for _ in 0..epoch {
        c.run_epoch();
    }
    c.state_digest()
}

fn flight_to(
    cfg: &CheckpointConfig,
    jobs: usize,
    mutate: Option<Mutation>,
    epoch: u64,
) -> Vec<FlightEvent> {
    let mut c = build(cfg, jobs, mutate);
    c.enable_flight(CatMask::ALL, BISECT_TRACE_CAPACITY);
    for _ in 0..epoch {
        c.run_epoch();
    }
    merge_streams(c.drain_flight().into_iter().map(|(_, evs)| evs).collect())
}

fn render_event(e: &FlightEvent) -> String {
    serde_json::to_string(e).expect("serialize flight event")
}

/// Run the bisection. Side A runs `p.a` unmodified; side B runs `p.b`
/// with `p.mutate` (if any) injected.
pub fn run(p: &BisectParams) -> BisectOutcome {
    let epochs = p.a.epochs.min(p.b.epochs);
    let mut probes = 0u64;
    let mut diverged = |e: u64| -> (bool, u64, u64) {
        probes += 1;
        let da = digest_at(&p.a, p.jobs, None, e);
        let db = digest_at(&p.b, p.jobs, p.mutate, e);
        (da != db, da, db)
    };
    let (diverged_end, digest_a, digest_b) = diverged(epochs);
    if !diverged_end {
        return BisectOutcome {
            epochs,
            digest_a,
            digest_b,
            first_divergent_epoch: None,
            probes,
            mismatches: Vec::new(),
            first_event: None,
            first_event_index: None,
            context: Vec::new(),
        };
    }
    // Binary search the smallest epoch whose digests differ. `lo` is
    // always an agreeing boundary, `hi` a diverged one; epoch 0 (the
    // freshly built clusters) handles scenario-shape differences.
    let first = if diverged(0).0 {
        0
    } else {
        let (mut lo, mut hi) = (0u64, epochs);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if diverged(mid).0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };
    // Field-level mismatches at the divergent boundary.
    let state_of = |cfg: &CheckpointConfig, mutate| {
        let mut c = build(cfg, p.jobs, mutate);
        for _ in 0..first {
            c.run_epoch();
        }
        c.checkpoint_state()
    };
    let mismatches = diff_states(&state_of(&p.a, None), &state_of(&p.b, p.mutate));
    // First divergent flight event across the narrowed window.
    let fa = flight_to(&p.a, p.jobs, None, first);
    let fb = flight_to(&p.b, p.jobs, p.mutate, first);
    let ra: Vec<String> = fa.iter().map(render_event).collect();
    let rb: Vec<String> = fb.iter().map(render_event).collect();
    let first_idx = ra
        .iter()
        .zip(&rb)
        .position(|(a, b)| a != b)
        .or_else(|| (ra.len() != rb.len()).then(|| ra.len().min(rb.len())));
    let (first_event, context) = match first_idx {
        Some(i) => {
            let at = |r: &[String], i: usize| {
                r.get(i).cloned().unwrap_or_else(|| "<stream ended>".to_string())
            };
            let lo = i.saturating_sub(CONTEXT_EVENTS);
            let hi = (i + CONTEXT_EVENTS + 1).min(ra.len());
            let ctx = (lo..hi)
                .map(|k| format!("[{k}]{} {}", if k == i { " >>" } else { "" }, at(&ra, k)))
                .collect();
            (Some((at(&ra, i), at(&rb, i))), ctx)
        }
        // Digest divergence with byte-identical flight streams can
        // happen when the differing state is control-plane only (e.g.
        // a counter) — still report the epoch, just without an event.
        None => (None, Vec::new()),
    };
    BisectOutcome {
        epochs,
        digest_a,
        digest_b,
        first_divergent_epoch: Some(first),
        probes,
        mismatches,
        first_event,
        first_event_index: first_idx,
        context,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_cluster::{scenario::ConsolidationSpec, ChurnPlan, ClusterConfig, Policy};
    use asman_sim::FaultPlan;

    fn config(seed: u64, policy: Policy, epochs: u64) -> CheckpointConfig {
        let d = ClusterConfig::default();
        CheckpointConfig {
            scenario: ConsolidationSpec {
                seed,
                ..ConsolidationSpec::default()
            },
            epoch_ms: d.epoch_ms,
            epochs,
            policy,
            cooldown_epochs: d.cooldown_epochs,
            retry_cap: d.retry_cap,
            audit_every: d.audit_every,
            model: d.model,
            faults: FaultPlan::empty(),
            churn: ChurnPlan::empty(),
            slot_reuse: false,
            series_capacity: 0,
            max_moves: 1,
        }
    }

    /// The negative twin: identical configs must report no divergence
    /// in exactly one probe pair.
    #[test]
    fn identical_configs_bisect_to_nothing() {
        let a = config(42, Policy::VcrdAware, 6);
        let out = run(&BisectParams {
            a: a.clone(),
            b: a,
            jobs: 1,
            mutate: None,
        });
        assert!(out.identical());
        assert_eq!(out.digest_a, out.digest_b);
        assert_eq!(out.probes, 1, "identical runs need exactly one probe");
        assert!(out.mismatches.is_empty());
    }

    /// Different policies diverge; the reported epoch must equal the
    /// linear scan's answer and carry field-level mismatches.
    #[test]
    fn policy_difference_bisects_to_linear_scan_answer() {
        let a = config(42, Policy::Static, 6);
        let b = config(42, Policy::VcrdAware, 6);
        let out = run(&BisectParams {
            a: a.clone(),
            b: b.clone(),
            jobs: 1,
            mutate: None,
        });
        let first = out.first_divergent_epoch.expect("policies diverge");
        let linear = (0..=6)
            .find(|&e| digest_at(&a, 1, None, e) != digest_at(&b, 1, None, e))
            .expect("linear scan finds divergence");
        assert_eq!(first, linear, "binary search must agree with linear scan");
        assert!(!out.mismatches.is_empty(), "divergence names state fields");
        assert!(out.first_event.is_some(), "schedules differ -> flight events differ");
    }

    /// Scenario-shape differences (seed) diverge at epoch 0 — before
    /// any epoch runs, the built clusters already differ.
    #[test]
    fn seed_difference_diverges_at_epoch_zero() {
        let out = run(&BisectParams {
            a: config(42, Policy::Static, 4),
            b: config(43, Policy::Static, 4),
            jobs: 1,
            mutate: None,
        });
        assert_eq!(out.first_divergent_epoch, Some(0));
    }

    /// The canned dirty-undercount mutation must land on the exact
    /// first epoch a migration executes (identical configs otherwise),
    /// cross-checked against a linear scan over every boundary.
    #[test]
    fn dirty_undercount_mutation_bisects_to_first_migration_epoch() {
        let a = config(42, Policy::VcrdAware, 8);
        let out = run(&BisectParams {
            a: a.clone(),
            b: a.clone(),
            jobs: 1,
            mutate: Some(Mutation::DirtyUndercount),
        });
        let first = out.first_divergent_epoch.expect("mutation diverges");
        let linear = (0..=8)
            .find(|&e| {
                digest_at(&a, 1, None, e) != digest_at(&a, 1, Some(Mutation::DirtyUndercount), e)
            })
            .expect("linear scan finds divergence");
        assert_eq!(first, linear, "binary search must agree with linear scan");
        // The mutation only changes migration cost, so the first
        // divergent epoch is the first one that records a migration.
        let mut c = a.build_cluster(1);
        let mut first_migration = None;
        for e in 0..8 {
            c.run_epoch();
            if !c.records().is_empty() {
                first_migration = Some(e + 1);
                break;
            }
        }
        assert_eq!(Some(first), first_migration, "diverges where the first migration lands");
        assert!(
            out.mismatches.iter().any(|m| m.contains("records")),
            "migration records differ: {:?}",
            out.mismatches
        );
    }

    /// The boost-skip mutation flows through the scheduler's audit
    /// hook; available only in audit builds.
    #[cfg(feature = "audit")]
    #[test]
    fn boost_skip_mutation_bisects_and_matches_linear_scan() {
        let a = config(42, Policy::VcrdAware, 6);
        let out = run(&BisectParams {
            a: a.clone(),
            b: a.clone(),
            jobs: 1,
            mutate: Some(Mutation::BoostSkip),
        });
        let first = out.first_divergent_epoch.expect("mutation diverges");
        let linear = (0..=6)
            .find(|&e| digest_at(&a, 1, None, e) != digest_at(&a, 1, Some(Mutation::BoostSkip), e))
            .expect("linear scan finds divergence");
        assert_eq!(first, linear);
        assert!(first > 0, "skipping BOOST only shows once epochs run");
    }
}
