//! Differential oracle harness: the optimized engine vs the naive one.
//!
//! Every cell of the audit grid builds **two** machines from identical
//! configuration and workload specs — one on the optimized
//! [`EventQueue`](asman_sim::EventQueue)-backed engine with all its
//! caches (packed-key heap, runqueue position index, idle/queued
//! bitmasks, scratch buffers), and one on the naive
//! [`OracleMachine`] whose [`OracleQueue`](asman_sim::OracleQueue)
//! linear-scans an unsorted vector and whose scheduler recomputes every
//! lookup from first principles. Both run over the same horizon and the
//! harness demands bit-identical observable behavior: event counts,
//! final simulated time, per-VCPU state/credit snapshots, the full
//! metrics registry, and — for tracing cells — the complete merged
//! flight-recorder event stream.
//!
//! Event keys `(time, seq)` are unique, so any correct min-ordered
//! queue pops the same sequence; a single divergent flight event
//! therefore pinpoints the *first* scheduling decision where an
//! optimized-path cache disagreed with the recomputed truth, and the
//! report quotes it with surrounding context from both streams.
//!
//! The grid spans seeds × schedulers × workload shapes × PCPU counts ×
//! cap modes × tracing on/off, and runs on the [`SweepRunner`] so the
//! `--jobs` axis is exercised too (results are bit-identical for every
//! worker count by construction).

use std::fmt::Write as _;

use asman_core::{asman_setup, AsmanConfig};
use asman_hypervisor::{
    CapMode, CoschedPolicy, Ev, Machine, MachineConfig, OracleMachine, VmSpec,
};
use asman_sim::{
    check_episode_invariants, detect_lhp, CatMask, Clock, FlightEvent, MetricsRegistry, SimQueue,
};
use asman_workloads::{Op, ScriptProgram};
use serde::Serialize;

use crate::exec::SweepRunner;
use crate::scenario::Sched;

/// Flight-recorder capacity per category per layer for tracing cells —
/// large enough that a 40 ms cell never drops, so the streams compare
/// exactly.
pub const TRACE_CAPACITY: usize = 100_000;

/// Workload shapes of the audit grid, chosen to cover the distinct
/// guest-kernel paths: spin-heavy lock contention (LHP territory),
/// mixed compute/sleep with short critical sections (block/wake churn),
/// and barrier synchronization (futex block + kernel bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Long critical sections under one contended spinlock.
    Locky,
    /// Compute, a short critical section, then a real sleep.
    MixedSleep,
    /// Compute then an all-thread barrier, repeatedly.
    BarrierSync,
}

impl Workload {
    /// Every workload shape.
    pub const ALL: [Workload; 3] = [Workload::Locky, Workload::MixedSleep, Workload::BarrierSync];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Locky => "locky",
            Workload::MixedSleep => "mixed",
            Workload::BarrierSync => "barrier",
        }
    }

    fn program(self, threads: usize) -> ScriptProgram {
        let clk = Clock::default();
        let ops = match self {
            Workload::Locky => vec![
                Op::CriticalSection {
                    lock: 0,
                    hold: clk.us(150),
                },
                Op::Compute(clk.us(80)),
            ],
            Workload::MixedSleep => vec![
                Op::Compute(clk.us(120)),
                Op::CriticalSection {
                    lock: 0,
                    hold: clk.us(40),
                },
                Op::Sleep(clk.us(300)),
            ],
            Workload::BarrierSync => vec![Op::Compute(clk.us(90)), Op::Barrier { id: 0 }],
        };
        ScriptProgram::homogeneous(self.label(), threads, ops).looping()
    }
}

/// One cell of the audit grid: a fully determined scenario that both
/// engines run independently.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Grid index (stable across job counts).
    pub id: usize,
    /// Machine RNG seed.
    pub seed: u64,
    /// Scheduler under test.
    pub sched: Sched,
    /// Guest workload shape.
    pub workload: Workload,
    /// Physical CPU count (2 = overcommitted, 4 = fully provisioned).
    pub pcpus: usize,
    /// Whether the flight recorder runs (full stream comparison).
    pub tracing: bool,
    /// Whether VM "b" is capped non-work-conserving (parking paths).
    pub nwc_cap: bool,
    /// Simulated horizon in milliseconds.
    pub horizon_ms: u64,
}

impl CellSpec {
    /// Human-readable cell label used in divergence reports.
    pub fn label(&self) -> String {
        format!(
            "cell {:03} [{} {} pcpus={} cap={} trace={} seed={:#018x}]",
            self.id,
            self.sched.label(),
            self.workload.label(),
            self.pcpus,
            if self.nwc_cap { "nwc" } else { "wc" },
            if self.tracing { "on" } else { "off" },
            self.seed,
        )
    }
}

/// Build the audit grid: `cells` specs cycling through every axis
/// combination (scheduler fastest, then workload, tracing, PCPU count,
/// cap mode) with a per-cell seed derived from `base_seed`.
pub fn grid(cells: usize, base_seed: u64) -> Vec<CellSpec> {
    (0..cells)
        .map(|id| CellSpec {
            id,
            seed: base_seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            sched: Sched::ALL[id % 3],
            workload: Workload::ALL[(id / 3) % 3],
            tracing: (id / 9) % 2 == 0,
            pcpus: [2, 4][(id / 18) % 2],
            nwc_cap: (id / 36) % 2 == 1,
            horizon_ms: 40,
        })
        .collect()
}

/// The two-VM spec set for a cell. Rebuilt from scratch for each
/// machine so the optimized and oracle runs share no state at all.
fn specs_for(spec: &CellSpec) -> Vec<VmSpec> {
    let a = VmSpec::new("a", 2, Box::new(spec.workload.program(2))).concurrent();
    let mut b = VmSpec::new("b", 2, Box::new(spec.workload.program(2)))
        .concurrent()
        .weight(if spec.seed & 1 == 1 { 128 } else { 256 });
    if spec.nwc_cap {
        b = b.cap(CapMode::NonWorkConserving);
    }
    vec![a, b]
}

/// Resolve a cell into the final `(MachineConfig, specs)` pair exactly
/// the way [`crate::machine_for`] would, but without committing to a
/// queue implementation — so the same inputs can feed either engine.
fn resolved(spec: &CellSpec) -> (MachineConfig, Vec<VmSpec>) {
    let cfg = MachineConfig {
        pcpus: spec.pcpus,
        seed: spec.seed,
        ..MachineConfig::default()
    };
    let specs = specs_for(spec);
    match spec.sched {
        Sched::Credit => (
            MachineConfig {
                policy: CoschedPolicy::None,
                ..cfg
            },
            specs,
        ),
        Sched::Con => (
            MachineConfig {
                policy: CoschedPolicy::Static,
                ..cfg
            },
            specs,
        ),
        Sched::Asman => asman_setup(
            AsmanConfig {
                machine: cfg,
                ..AsmanConfig::default()
            },
            specs,
        ),
    }
}

/// A confirmed optimized-vs-oracle disagreement in one cell.
#[derive(Clone, Debug, Serialize)]
pub struct Divergence {
    /// The cell's label (axes + seed).
    pub cell: String,
    /// First-mismatch report with surrounding context.
    pub report: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n{}", self.cell, self.report)
    }
}

/// Result of one audited cell.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's label.
    pub label: String,
    /// FNV-1a fingerprint of the optimized engine's digest (identical
    /// across job counts by construction; used for cross-checks).
    pub digest: u64,
    /// The first divergence found, if any.
    pub divergence: Option<Divergence>,
}

/// Everything observable about a finished machine, as ordered text
/// lines: engine counters, per-VM VCPU state/credit snapshots, VCRD
/// levels, and the full metrics registry (serialized from `BTreeMap`s,
/// hence deterministic).
fn digest<Q: SimQueue<Ev>>(m: &Machine<Q>) -> String {
    let mut s = String::new();
    writeln!(s, "events_processed={}", m.events_processed()).unwrap();
    writeln!(s, "now={}", m.now().as_u64()).unwrap();
    for vm in 0..m.vm_count() {
        writeln!(s, "vm{vm}.vcpus={:?}", m.vcpu_snapshot(vm)).unwrap();
        writeln!(s, "vm{vm}.vcrd={:?}", m.vm_vcrd(vm)).unwrap();
        writeln!(s, "vm{vm}.online={}", m.vm_online_count(vm)).unwrap();
    }
    let mut reg = MetricsRegistry::new();
    m.export_metrics(&mut reg);
    s.push_str(&serde_json::to_string(&reg).expect("serialize registry"));
    s.push('\n');
    s
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compare the two digests line by line; on mismatch, report the first
/// differing line from both engines.
fn first_digest_divergence(cell: &str, opt: &str, ora: &str) -> Option<Divergence> {
    if opt == ora {
        return None;
    }
    let (mut lo, mut ln) = (opt.lines(), ora.lines());
    let mut i = 0usize;
    loop {
        match (lo.next(), ln.next()) {
            (Some(a), Some(b)) if a == b => i += 1,
            (a, b) => {
                return Some(Divergence {
                    cell: cell.to_string(),
                    report: format!(
                        "digest line {i} differs\n  optimized: {}\n  oracle:    {}",
                        a.unwrap_or("<missing>"),
                        b.unwrap_or("<missing>"),
                    ),
                });
            }
        }
    }
}

/// Compare the merged flight-recorder streams event by event; on
/// mismatch, report the first divergent event index with up to three
/// events of context on either side from both streams.
fn first_stream_divergence(
    cell: &str,
    opt: &[FlightEvent],
    ora: &[FlightEvent],
) -> Option<Divergence> {
    let n = opt.len().min(ora.len());
    let idx = (0..n)
        .find(|&i| opt[i] != ora[i])
        .or_else(|| (opt.len() != ora.len()).then_some(n))?;
    let mut report = format!(
        "flight streams diverge at event {idx} (optimized has {}, oracle has {})\n",
        opt.len(),
        ora.len(),
    );
    let render = |s: &[FlightEvent], i: usize| {
        s.get(i)
            .map(|e| format!("t={} {:?}", e.t.as_u64(), e.ev))
            .unwrap_or_else(|| "<end of stream>".to_string())
    };
    for i in idx.saturating_sub(3)..(idx + 4).min(opt.len().max(ora.len())) {
        let mark = if i == idx { ">>" } else { "  " };
        writeln!(report, "  [{i}] {mark} optimized: {}", render(opt, i)).unwrap();
        writeln!(report, "  [{i}] {mark} oracle:    {}", render(ora, i)).unwrap();
    }
    Some(Divergence {
        cell: cell.to_string(),
        report,
    })
}

/// Run one cell on both engines and compare everything observable.
pub fn run_cell(spec: &CellSpec) -> CellOutcome {
    run_cell_impl(spec, |_| {})
}

/// Run one cell with a fault armed on the **optimized** engine only,
/// while the oracle stays clean. A correct differential harness must
/// then report a divergence; the mutation tests assert it does. The
/// hook runs after construction and before the first event, so it can
/// call the machine's `audit_inject_*` mutators.
#[cfg(feature = "audit")]
pub fn run_cell_with_fault(spec: &CellSpec, arm: impl FnOnce(&mut Machine)) -> CellOutcome {
    run_cell_impl(spec, arm)
}

fn run_cell_impl(spec: &CellSpec, arm: impl FnOnce(&mut Machine)) -> CellOutcome {
    let (cfg, specs) = resolved(spec);
    let mut opt = Machine::new(cfg, specs);
    arm(&mut opt);
    let (cfg, specs) = resolved(spec);
    let mut ora = OracleMachine::build(cfg, specs);
    if spec.tracing {
        opt.enable_flight(CatMask::ALL, TRACE_CAPACITY);
        ora.enable_flight(CatMask::ALL, TRACE_CAPACITY);
    }
    let deadline = opt.config().clock.ms(spec.horizon_ms);
    opt.run_until(deadline);
    ora.run_until(deadline);

    let label = spec.label();
    let d_opt = digest(&opt);
    let d_ora = digest(&ora);
    let mut divergence = first_digest_divergence(&label, &d_opt, &d_ora);
    if divergence.is_none() && spec.tracing {
        let so = opt.flight_events();
        let sn = ora.flight_events();
        divergence = first_stream_divergence(&label, &so, &sn);
        if divergence.is_none() {
            // The agreed stream must also satisfy the LHP episode
            // invariants (bounded wasted spin, ordered spans).
            check_episode_invariants(&detect_lhp(&so));
        }
    }
    CellOutcome {
        label,
        digest: fnv1a(&d_opt),
        divergence,
    }
}

/// Aggregate result of an audit grid run.
#[derive(Clone, Debug, Serialize)]
pub struct AuditReport {
    /// Cells run.
    pub cells: usize,
    /// Cells where both engines agreed bit-for-bit.
    pub passed: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-cell digest fingerprints (hex), in cell order.
    pub digests: Vec<String>,
    /// Every confirmed divergence, in cell order.
    pub divergences: Vec<Divergence>,
}

impl AuditReport {
    /// Whether every cell agreed.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty() && self.passed == self.cells
    }

    /// Render the summary table (and any divergence reports).
    pub fn render(&self) -> String {
        let mut s = format!(
            "Differential audit — optimized engine vs naive oracle\n\
             {} cells ({} workers): {} agreed, {} diverged\n",
            self.cells,
            self.jobs,
            self.passed,
            self.divergences.len(),
        );
        for d in &self.divergences {
            writeln!(s, "\nDIVERGENCE in {d}").unwrap();
        }
        if self.ok() {
            s.push_str("every cell bit-identical across both engines\n");
        }
        s
    }
}

/// Run an audit grid of `cells` cells on `jobs` workers.
pub fn run_grid(cells: usize, base_seed: u64, jobs: usize) -> AuditReport {
    let specs = grid(cells, base_seed);
    let runner = SweepRunner::new(jobs);
    let outcomes = runner.map(specs, |s| run_cell(&s));
    let mut passed = 0usize;
    let mut digests = Vec::with_capacity(outcomes.len());
    let mut divergences = Vec::new();
    for o in outcomes {
        match o.divergence {
            None => passed += 1,
            Some(d) => divergences.push(d),
        }
        digests.push(format!("{:016x}", o.digest));
    }
    AuditReport {
        cells,
        passed,
        jobs: runner.jobs(),
        digests,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::{Cycles, FlightEv};

    /// 18 cells cover every scheduler × workload × tracing combination;
    /// each must agree bit-for-bit across the two engines.
    #[test]
    fn small_grid_bit_agrees() {
        let report = run_grid(18, 42, 2);
        assert!(
            report.ok(),
            "optimized and oracle engines diverged:\n{}",
            report.render()
        );
    }

    /// Digest fingerprints must not depend on the worker count.
    #[test]
    fn jobs_do_not_change_digests() {
        let seq = run_grid(9, 7, 1);
        let par = run_grid(9, 7, 4);
        assert!(seq.ok() && par.ok());
        assert_eq!(seq.digests, par.digests, "jobs changed audit digests");
    }

    /// The stream diff names the first divergent event and quotes both
    /// streams around it.
    #[test]
    fn divergence_report_names_first_event() {
        let ev = |t: u64, vcpu: u32| FlightEvent {
            t: Cycles(t),
            ev: FlightEv::Park { vcpu, vm: 0 },
        };
        let a: Vec<_> = (0..6).map(|i| ev(i * 10, 1)).collect();
        let mut b = a.clone();
        b[2] = ev(20, 7);
        let d = first_stream_divergence("cell x", &a, &b).expect("must diverge");
        assert!(d.report.contains("diverge at event 2"), "{}", d.report);
        assert!(d.report.contains("vcpu: 1"), "{}", d.report);
        assert!(d.report.contains("vcpu: 7"), "{}", d.report);
        assert!(first_stream_divergence("cell x", &a, &a.clone()).is_none());
        // Length mismatch alone is a divergence at the shorter length.
        let d = first_stream_divergence("cell x", &a[..4], &a).expect("must diverge");
        assert!(d.report.contains("diverge at event 4"), "{}", d.report);
        assert!(d.report.contains("<end of stream>"), "{}", d.report);
    }

    /// A wake-churn cell where BOOST decides the schedule: sleeping
    /// VCPUs wake constantly on an overcommitted host, so whether a
    /// woken VCPU preempts the runner is observable in every digest
    /// line. The injected BOOST-skip fault (armed on the optimized
    /// engine only) must surface as a divergence, and the identical
    /// un-armed cell must stay green — proving the harness catches a
    /// pure scheduling-policy mutation that miscounts no credit.
    #[cfg(feature = "audit")]
    #[test]
    fn boost_skip_fault_is_flagged_by_the_differential_harness() {
        let spec = CellSpec {
            id: 0,
            seed: 42,
            sched: Sched::Credit,
            workload: Workload::MixedSleep,
            pcpus: 2,
            tracing: true,
            nwc_cap: false,
            horizon_ms: 40,
        };
        let clean = run_cell(&spec);
        assert!(
            clean.divergence.is_none(),
            "un-armed cell must agree: {}",
            clean.divergence.unwrap()
        );
        let armed = run_cell_with_fault(&spec, |m| m.audit_inject_boost_skip());
        let d = armed
            .divergence
            .expect("BOOST-skip fault must diverge from the oracle");
        assert!(
            d.report.contains("differs") || d.report.contains("diverge"),
            "divergence report must name the first mismatch:\n{d}"
        );
        assert_ne!(clean.digest, armed.digest, "fault must change the digest");
    }

    /// The digest diff reports the first differing line from both sides.
    #[test]
    fn digest_divergence_reports_first_line() {
        let opt = "a=1\nb=2\nc=3\n";
        let ora = "a=1\nb=9\nc=3\n";
        let d = first_digest_divergence("cell y", opt, ora).expect("must diverge");
        assert!(d.report.contains("digest line 1"), "{}", d.report);
        assert!(d.report.contains("b=2") && d.report.contains("b=9"), "{}", d.report);
        assert!(first_digest_divergence("cell y", opt, opt).is_none());
    }
}
