//! Shared scenario machinery for the paper's experiments.
//!
//! §5.2 (single VM): the administrator VM V0 has 8 VCPUs, weight 256 and
//! no workload; the measured VM V1 has 4 VCPUs and weight 256/128/64/32,
//! giving configured VCPU online rates of 100/66.7/40/22.2 % (Equations
//! 1–2), in non-work-conserving mode.
//!
//! §5.3 (multiple VMs): 4 or 6 VMs with 4 VCPUs each, weight 256,
//! work-conserving mode, running combinations of concurrent (NAS) and
//! high-throughput (SPEC-rate) workloads repeatedly; the measurement is
//! the mean run time of the first ten rounds.

use asman_core::{asman_machine, AsmanConfig};
use asman_guest::GuestStats;
use asman_hypervisor::{CapMode, CoschedPolicy, Machine, MachineConfig, VmSpec};
use asman_sim::Cycles;
use asman_workloads::{BackgroundConfig, BackgroundService, Program, ScriptProgram};
use serde::{Deserialize, Serialize};

/// Scheduler under test, matching the labels of the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sched {
    /// The unmodified Xen Credit scheduler.
    Credit,
    /// ASMan: adaptive dynamic coscheduling.
    Asman,
    /// CON: static coscheduling of administrator-flagged concurrent VMs
    /// (the authors' VEE'09 system).
    Con,
}

impl Sched {
    /// Display label as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Sched::Credit => "Credit",
            Sched::Asman => "ASMan",
            Sched::Con => "CON",
        }
    }

    /// All three schedulers.
    pub const ALL: [Sched; 3] = [Sched::Credit, Sched::Asman, Sched::Con];
}

/// The paper's four V1 weights and the resulting online rates.
pub const WEIGHT_RATES: [(u32, f64); 4] = [(256, 100.0), (128, 66.7), (64, 40.0), (32, 22.2)];

/// A VM with no workload (for tests needing a truly silent peer).
pub fn idle_vm(name: &str, vcpus: usize) -> VmSpec {
    VmSpec::new(
        name,
        vcpus,
        Box::new(ScriptProgram::homogeneous("idle", vcpus, vec![])),
    )
}

/// Domain-0: "no workload on it" in the paper's terms, but a real dom0
/// still services interrupts, timekeeping and xenstore — a few percent
/// of ambient activity that perturbs guest scheduling windows.
pub fn dom0_vm(name: &str, vcpus: usize, seed: u64) -> VmSpec {
    VmSpec::new(
        name,
        vcpus,
        Box::new(BackgroundService::new(
            BackgroundConfig::default(),
            vcpus,
            seed,
        )),
    )
}

/// Build a machine under the given scheduler. For [`Sched::Asman`] every
/// VM gets a Monitoring Module; for [`Sched::Con`] the supplied specs are
/// expected to carry `concurrent_hint` flags already.
pub fn machine_for(sched: Sched, cfg: MachineConfig, specs: Vec<VmSpec>) -> Machine {
    match sched {
        Sched::Credit => Machine::new(
            MachineConfig {
                policy: CoschedPolicy::None,
                ..cfg
            },
            specs,
        ),
        Sched::Con => Machine::new(
            MachineConfig {
                policy: CoschedPolicy::Static,
                ..cfg
            },
            specs,
        ),
        Sched::Asman => asman_machine(
            AsmanConfig {
                machine: cfg,
                ..AsmanConfig::default()
            },
            specs,
        ),
    }
}

/// Single-VM experiment configuration (§5.2 testbed).
#[derive(Clone, Copy, Debug)]
pub struct SingleVmScenario {
    /// V1's weight (256/128/64/32).
    pub weight: u32,
    /// Scheduler under test.
    pub sched: Sched,
    /// Simulation seed.
    pub seed: u64,
    /// Give-up horizon in simulated seconds.
    pub horizon_secs: u64,
    /// Guest cost model override for V1 (e.g. the JVM's larger safepoint
    /// spin budget).
    pub costs: Option<asman_guest::GuestCosts>,
}

impl SingleVmScenario {
    /// A scenario with the default horizon.
    pub fn new(sched: Sched, weight: u32, seed: u64) -> Self {
        SingleVmScenario {
            weight,
            sched,
            seed,
            horizon_secs: 4_000,
            costs: None,
        }
    }

    /// The configured VCPU online rate for this weight (Equation 2 with
    /// V0 = 8 VCPUs / weight 256 idle, V1 = 4 VCPUs).
    pub fn online_rate(&self) -> f64 {
        let omega = self.weight as f64 / (self.weight as f64 + 256.0);
        8.0 * omega / 4.0
    }

    /// Run `program` on V1 until completion (or horizon); returns the
    /// outcome measurements.
    pub fn run(&self, program: Box<dyn Program>) -> SingleVmOutcome {
        let mut m = self.build(program);
        let clk = m.config().clock;
        let done = m.run_to_completion(clk.secs(self.horizon_secs));
        SingleVmOutcome::collect(&m, 1, done)
    }

    /// Build the machine without running it (for custom measurement
    /// windows, e.g. the 30-second wait traces of Figures 2 and 8).
    pub fn build(&self, program: Box<dyn Program>) -> Machine {
        let cfg = MachineConfig {
            seed: self.seed,
            ..MachineConfig::default()
        };
        let mut v1 = VmSpec::new("V1", 4, program)
            .weight(self.weight)
            .cap(CapMode::NonWorkConserving)
            .concurrent();
        if let Some(c) = self.costs {
            v1 = v1.costs(c);
        }
        machine_for(
            self.sched,
            cfg,
            vec![dom0_vm("V0", 8, self.seed ^ 0xD0), v1],
        )
    }
}

/// Measurements from a single-VM run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SingleVmOutcome {
    /// Whether the workload completed before the horizon.
    pub completed: bool,
    /// Run time in simulated seconds (to completion, or the horizon).
    pub run_secs: f64,
    /// Kernel spinlock acquisitions observed.
    pub locks: u64,
    /// Waits ≥ 2^10 cycles.
    pub over_2_10: u64,
    /// Waits ≥ 2^20 cycles (over-threshold).
    pub over_2_20: u64,
    /// Measured VCPU online rate of the workload VM.
    pub online_rate: f64,
    /// Cycles burned spinning on kernel locks.
    pub spin_kernel_secs: f64,
    /// Cycles burned spinning at barriers.
    pub spin_barrier_secs: f64,
    /// VCRD LOW→HIGH transitions seen by the VMM.
    pub vcrd_raises: u64,
    /// Fraction of time the VM spent with VCRD HIGH.
    pub vcrd_high_frac: f64,
    /// Coscheduling IPI bursts.
    pub cosched_bursts: u64,
    /// Cycles burned in user-space pipeline (flag) spinning, in seconds.
    pub spin_pipeline_secs: f64,
    /// Useful work executed, in seconds.
    pub useful_secs: f64,
    /// Fraction of the VM's *online* time during which all its VCPUs were
    /// online simultaneously (coscheduling quality).
    pub all_online_frac: f64,
}

impl SingleVmOutcome {
    /// Collect the outcome for VM index `vm` from a finished machine.
    pub fn collect(m: &Machine, vm: usize, completed: bool) -> SingleVmOutcome {
        let clk = m.config().clock;
        let stats: &GuestStats = m.vm_kernel(vm).stats();
        let end = stats.finished_at.unwrap_or(m.now());
        let acct = m.vm_accounting(vm);
        let elapsed = if m.now().is_zero() {
            Cycles(1)
        } else {
            m.now()
        };
        SingleVmOutcome {
            completed,
            run_secs: clk.to_secs(end),
            locks: stats.lock_acquisitions,
            over_2_10: stats.wait_hist.count_at_least_pow2(10),
            over_2_20: stats.wait_hist.count_at_least_pow2(20),
            online_rate: acct.online_rate(end.max(Cycles(1))),
            spin_kernel_secs: clk.to_secs(stats.spin_kernel_cycles),
            spin_barrier_secs: clk.to_secs(stats.spin_barrier_cycles),
            vcrd_raises: acct.vcrd_raises,
            vcrd_high_frac: acct.vcrd_high_cycles.as_u64() as f64 / elapsed.as_u64() as f64,
            cosched_bursts: acct.cosched_bursts,
            spin_pipeline_secs: clk.to_secs(stats.spin_pipeline_cycles),
            useful_secs: clk.to_secs(stats.useful_cycles),
            all_online_frac: acct.all_online_frac(end.max(Cycles(1))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_rates_match_equation_2() {
        for (w, pct) in WEIGHT_RATES {
            let s = SingleVmScenario::new(Sched::Credit, w, 0);
            assert!(
                (s.online_rate() * 100.0 - pct).abs() < 0.1,
                "weight {w}: {} vs {pct}",
                s.online_rate() * 100.0
            );
        }
    }

    #[test]
    fn sched_labels() {
        assert_eq!(Sched::Credit.label(), "Credit");
        assert_eq!(Sched::Asman.label(), "ASMan");
        assert_eq!(Sched::Con.label(), "CON");
    }
}
