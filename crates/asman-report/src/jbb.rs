//! SPECjbb2005-style throughput measurement (§5.2, Figure 10).
//!
//! A single JVM instance (VM V1, 4 VCPUs) runs 1..=8 warehouses; the
//! metric is business operations per second measured over a steady-state
//! window, and the SPECjbb score is the mean throughput over the points
//! with at least as many warehouses as VCPUs.

use asman_sim::Cycles;
use asman_workloads::{SpecJbb, SpecJbbConfig};
use serde::{Deserialize, Serialize};

use crate::scenario::{Sched, SingleVmScenario};

/// One throughput measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JbbPoint {
    /// Warehouse count.
    pub warehouses: usize,
    /// Transactions per simulated second in the measurement window.
    pub bops: f64,
    /// Measured VCPU online rate during the window run.
    pub online_rate: f64,
    /// VCRD raises over the run (ASMan only).
    pub vcrd_raises: u64,
}

/// SPECjbb experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct JbbScenario {
    /// Scheduler under test.
    pub sched: Sched,
    /// V1 weight (sets the online rate per Equation 2).
    pub weight: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Warm-up before the measurement window, simulated seconds.
    pub warmup_secs: u64,
    /// Measurement window, simulated seconds.
    pub window_secs: u64,
}

impl JbbScenario {
    /// Default measurement setup.
    pub fn new(sched: Sched, weight: u32, seed: u64) -> Self {
        JbbScenario {
            sched,
            weight,
            seed,
            warmup_secs: 3,
            window_secs: 15,
        }
    }

    /// Measure throughput with `warehouses` warehouse threads.
    pub fn run(&self, warehouses: usize) -> JbbPoint {
        let mut sc = SingleVmScenario::new(self.sched, self.weight, self.seed);
        // HotSpot-era JVMs spin aggressively at safepoint polls and on
        // contended monitors before parking; give the guest a larger
        // barrier spin budget to match.
        sc.costs = Some(asman_guest::GuestCosts {
            barrier_spin_budget: asman_sim::Clock::default().ms(3),
            ..asman_guest::GuestCosts::default()
        });
        let jbb = SpecJbb::new(
            SpecJbbConfig {
                warehouses,
                ..SpecJbbConfig::default()
            },
            self.seed ^ 0x1BB,
        );
        let mut m = sc.build(Box::new(jbb));
        let clk = m.config().clock;
        m.run_until(clk.secs(self.warmup_secs));
        let tx0 = m.vm_kernel(1).stats().transactions;
        let t0 = m.now();
        m.run_until(clk.secs(self.warmup_secs + self.window_secs));
        let tx1 = m.vm_kernel(1).stats().transactions;
        let window = clk.to_secs(m.now() - t0);
        JbbPoint {
            warehouses,
            bops: (tx1 - tx0) as f64 / window,
            online_rate: m.vm_accounting(1).online_rate(m.now().max(Cycles(1))),
            vcrd_raises: m.vm_accounting(1).vcrd_raises,
        }
    }

    /// Throughput for warehouses 1..=`max_w`.
    pub fn sweep(&self, max_w: usize) -> Vec<JbbPoint> {
        (1..=max_w).map(|w| self.run(w)).collect()
    }

    /// [`JbbScenario::sweep`], with the per-warehouse machines fanned out
    /// over `runner`'s worker pool. Point order (and every value) is
    /// identical to the sequential sweep.
    pub fn sweep_with(&self, max_w: usize, runner: &crate::exec::SweepRunner) -> Vec<JbbPoint> {
        runner.map((1..=max_w).collect(), |w| self.run(w))
    }

    /// The SPECjbb score: mean of the points with `warehouses >= vcpus`
    /// (the VM has 4 VCPUs).
    pub fn score(points: &[JbbPoint]) -> f64 {
        let scoring: Vec<f64> = points
            .iter()
            .filter(|p| p.warehouses >= 4)
            .map(|p| p.bops)
            .collect();
        if scoring.is_empty() {
            0.0
        } else {
            scoring.iter().sum::<f64>() / scoring.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_scales_with_warehouses() {
        let sc = JbbScenario {
            warmup_secs: 1,
            window_secs: 4,
            ..JbbScenario::new(Sched::Credit, 256, 5)
        };
        let one = sc.run(1);
        let four = sc.run(4);
        assert!(one.bops > 100.0, "1 warehouse: {}", one.bops);
        // With 4 VCPUs, 4 warehouses must outrun 1 by a wide margin.
        assert!(
            four.bops > one.bops * 2.0,
            "1w={} 4w={}",
            one.bops,
            four.bops
        );
    }

    #[test]
    fn score_averages_w_ge_4() {
        let pts: Vec<JbbPoint> = (1..=6)
            .map(|w| JbbPoint {
                warehouses: w,
                bops: w as f64 * 100.0,
                online_rate: 1.0,
                vcrd_raises: 0,
            })
            .collect();
        // Mean of 400, 500, 600.
        assert!((JbbScenario::score(&pts) - 500.0).abs() < 1e-9);
        assert_eq!(JbbScenario::score(&[]), 0.0);
    }
}
