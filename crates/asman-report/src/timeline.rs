//! Schedule-timeline reconstruction and rendering.
//!
//! Turns a machine's schedule trace into per-VCPU online intervals and an
//! ASCII Gantt chart — the tool that made the duty-cycle geometry of the
//! calibration visible (aligned vs staggered windows, park/unpark
//! quantization, gang formation under coscheduling).

use asman_hypervisor::{Machine, SchedEventKind};
use asman_sim::Cycles;
use serde::Serialize;

/// A contiguous online interval of one VCPU.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OnlineSpan {
    /// Global VCPU index.
    pub vcpu: usize,
    /// Owning VM.
    pub vm: usize,
    /// PCPU it ran on.
    pub pcpu: usize,
    /// Dispatch time.
    pub start: Cycles,
    /// Preempt/block time.
    pub end: Cycles,
}

/// Per-VCPU online spans reconstructed from the schedule trace.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Timeline {
    /// All completed spans, in start order.
    pub spans: Vec<OnlineSpan>,
    /// Number of VCPUs observed.
    pub vcpus: usize,
}

impl Timeline {
    /// Reconstruct from a machine whose schedule trace was enabled with
    /// [`Machine::enable_schedule_trace`].
    pub fn from_machine(m: &Machine) -> Timeline {
        let mut open: Vec<Option<(Cycles, usize, usize)>> = Vec::new();
        let mut spans = Vec::new();
        let mut max_vcpu = 0;
        for &(t, ev) in m.schedule_trace().samples() {
            max_vcpu = max_vcpu.max(ev.vcpu);
            if open.len() <= ev.vcpu {
                open.resize(ev.vcpu + 1, None);
            }
            match ev.kind {
                SchedEventKind::Dispatch => {
                    open[ev.vcpu] = Some((t, ev.pcpu, ev.vm));
                }
                SchedEventKind::Preempt | SchedEventKind::Block | SchedEventKind::Park => {
                    if let Some((start, pcpu, vm)) = open[ev.vcpu].take() {
                        spans.push(OnlineSpan {
                            vcpu: ev.vcpu,
                            vm,
                            pcpu,
                            start,
                            end: t,
                        });
                    }
                }
                _ => {}
            }
        }
        Timeline {
            spans,
            vcpus: max_vcpu + 1,
        }
    }

    /// Total online time of `vcpu` within `[from, to]`.
    pub fn online_in(&self, vcpu: usize, from: Cycles, to: Cycles) -> Cycles {
        self.spans
            .iter()
            .filter(|s| s.vcpu == vcpu)
            .map(|s| {
                let a = s.start.max(from);
                let b = s.end.min(to);
                b.saturating_sub(a)
            })
            .sum()
    }

    /// Wake-to-dispatch latencies per VCPU, reconstructed from the
    /// schedule trace (the metric behind Xen's BOOST mechanism).
    pub fn wake_latencies(m: &Machine) -> Vec<(usize, Cycles)> {
        let mut pending: Vec<Option<Cycles>> = Vec::new();
        let mut out = Vec::new();
        for &(t, ev) in m.schedule_trace().samples() {
            if pending.len() <= ev.vcpu {
                pending.resize(ev.vcpu + 1, None);
            }
            match ev.kind {
                SchedEventKind::Wake => pending[ev.vcpu] = Some(t),
                SchedEventKind::Dispatch => {
                    if let Some(w) = pending[ev.vcpu].take() {
                        out.push((ev.vcpu, t.saturating_sub(w)));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// ASCII Gantt chart of the window `[from, to]` with `cols` columns:
    /// one row per VCPU, `#` where online, `.` where not.
    pub fn gantt(&self, from: Cycles, to: Cycles, cols: usize) -> String {
        assert!(to > from && cols > 0);
        let step = (to - from) / cols as u64;
        let step = step.max(Cycles(1));
        let mut out = String::new();
        for v in 0..self.vcpus {
            out.push_str(&format!("vcpu{v:<3} "));
            for c in 0..cols {
                let a = from + step * c as u64;
                let b = a + step;
                let on = self.online_in(v, a, b);
                out.push(if on.as_u64() * 2 >= step.as_u64() {
                    '#'
                } else if on > Cycles::ZERO {
                    '+'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Sched, SingleVmScenario};
    use asman_sim::Clock;
    use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};

    fn traced_machine(sched: Sched) -> Machine {
        let sc = SingleVmScenario::new(sched, 32, 42);
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
        let mut m = sc.build(Box::new(lu));
        m.enable_schedule_trace(200_000);
        m.run_until(Clock::default().secs(2));
        m
    }

    #[test]
    fn spans_reconstruct_and_render() {
        let clk = Clock::default();
        let m = traced_machine(Sched::Credit);
        let tl = Timeline::from_machine(&m);
        assert!(!tl.spans.is_empty());
        // Spans are well-formed.
        for s in &tl.spans {
            assert!(s.end >= s.start, "span {s:?}");
        }
        let g = tl.gantt(clk.secs(1), clk.ms(1_500), 50);
        assert!(g.lines().count() >= 12, "dom0 8 + guest 4 vcpus");
        assert!(g.contains('#') || g.contains('+'));
    }

    #[test]
    fn online_time_matches_accounting_roughly() {
        let clk = Clock::default();
        let m = traced_machine(Sched::Credit);
        let tl = Timeline::from_machine(&m);
        // VM 1's vcpus are global 8..12 (after dom0's 8).
        let from = Cycles::ZERO;
        let to = m.now();
        let tl_online: u64 = (8..12).map(|v| tl.online_in(v, from, to).as_u64()).sum();
        let acct = m.vm_accounting(1).total_online().as_u64();
        let diff = (tl_online as i64 - acct as i64).unsigned_abs();
        // A final open span may be missing from the trace.
        assert!(
            diff < clk.ms(50).as_u64(),
            "timeline {tl_online} vs accounting {acct}"
        );
    }

    #[test]
    fn asman_gantt_shows_more_simultaneity() {
        let clk = Clock::default();
        let credit = Timeline::from_machine(&traced_machine(Sched::Credit));
        let asman = Timeline::from_machine(&traced_machine(Sched::Asman));
        // Count window steps where all four guest VCPUs are mostly online.
        let count_aligned = |tl: &Timeline| {
            let from = clk.ms(500);
            let step = clk.ms(1);
            (0..1_000)
                .filter(|&i| {
                    let a = from + step * i as u64;
                    let b = a + step;
                    (8..12).all(|v| tl.online_in(v, a, b).as_u64() * 2 >= step.as_u64())
                })
                .count()
        };
        let ca = count_aligned(&credit);
        let aa = count_aligned(&asman);
        assert!(
            aa > ca,
            "ASMan must show more fully-aligned milliseconds: {aa} vs {ca}"
        );
    }
}
