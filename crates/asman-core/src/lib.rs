//! ASMan — the adaptive dynamic coscheduling manager of the HPDC'11
//! paper "Dynamic Adaptive Scheduling for Virtual Machines".
//!
//! This crate implements the paper's contribution on top of the
//! hypervisor substrate (`asman-hypervisor`) and guest model
//! (`asman-guest`):
//!
//! * the **VCRD** (VCPU Related Degree) concept and its adjusting
//!   algorithm — Algorithm 1 — in [`monitor::AsmanMonitor`];
//! * the modified **Roth–Erev learning** updating function — Algorithm 2
//!   — in [`learning::LastingTimeEstimator`];
//! * the **locality-of-synchronization** model of §4.2 in [`locality`];
//! * convenience constructors that assemble an ASMan-managed machine
//!   (Adaptive Scheduler = Credit scheduler + VCRD-driven IPI
//!   coscheduling, Algorithms 3–4, whose mechanics live in the
//!   hypervisor crate and are activated by
//!   [`CoschedPolicy::Adaptive`](asman_hypervisor::CoschedPolicy)).
//!
//! # Quick start
//!
//! ```
//! use asman_core::{asman_machine, AsmanConfig};
//! use asman_hypervisor::VmSpec;
//! use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};
//! use asman_sim::Clock;
//!
//! let clk = Clock::default();
//! let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(1);
//! let mut machine = asman_machine(
//!     AsmanConfig::default(),
//!     vec![VmSpec::new("vm1", 4, Box::new(lu))],
//! );
//! machine.run_to_completion(clk.secs(600));
//! assert!(machine.vm_kernel(0).stats().finished_at.is_some());
//! ```

#![warn(missing_docs)]

pub mod learning;
pub mod locality;
pub mod monitor;

pub use learning::{LastingTimeEstimator, LearningConfig};
pub use locality::{Locality, LocalitySegmenter, SyntheticLocalityProcess};
pub use monitor::{AsmanMonitor, MonitorStats};

use asman_guest::MonitorConfig;
use asman_hypervisor::{CoschedPolicy, Machine, MachineConfig, VmSpec};

/// Bundled configuration for an ASMan deployment: machine parameters plus
/// the per-VM Monitoring Module settings.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AsmanConfig {
    /// Machine/scheduler parameters (the policy field is overridden to
    /// [`CoschedPolicy::Adaptive`]).
    pub machine: MachineConfig,
    /// Over-threshold detection (δ).
    pub monitor: MonitorConfig,
    /// Learning algorithm parameters.
    pub learning: LearningConfig,
}

/// Resolve an [`AsmanConfig`] into the machine configuration and
/// observer-decorated VM specs an ASMan deployment needs: the policy is
/// forced to [`CoschedPolicy::Adaptive`] and every VM gets a Monitoring
/// Module with an independent deterministic seed derived from the
/// machine seed. Split out from [`asman_machine`] so the differential
/// audit harness can build an oracle machine from the exact same
/// inputs.
pub fn asman_setup(cfg: AsmanConfig, specs: Vec<VmSpec>) -> (MachineConfig, Vec<VmSpec>) {
    let mcfg = MachineConfig {
        policy: CoschedPolicy::Adaptive,
        ..cfg.machine
    };
    let specs = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let seed = mcfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            spec.observer(Box::new(AsmanMonitor::new(
                cfg.monitor,
                cfg.learning.clone(),
                seed,
            )))
        })
        .collect();
    (mcfg, specs)
}

/// Build a machine running the ASMan Adaptive Scheduler, attaching a
/// Monitoring Module to every VM (each with an independent deterministic
/// seed derived from the machine seed).
pub fn asman_machine(cfg: AsmanConfig, specs: Vec<VmSpec>) -> Machine {
    let (mcfg, specs) = asman_setup(cfg, specs);
    Machine::new(mcfg, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::{Clock, Cycles};
    use asman_workloads::{Op, ScriptProgram};

    #[test]
    fn asman_machine_uses_adaptive_policy() {
        let clk = Clock::default();
        let p = ScriptProgram::homogeneous("x", 2, vec![Op::Compute(clk.ms(1))]);
        let m = asman_machine(
            AsmanConfig::default(),
            vec![VmSpec::new("v", 2, Box::new(p))],
        );
        assert_eq!(m.config().policy, CoschedPolicy::Adaptive);
    }

    /// End-to-end: a contended-lock workload under ASMan raises VCRD when
    /// lock-holder preemption produces over-threshold waits.
    #[test]
    fn vcrd_raises_under_real_contention() {
        let clk = Clock::default();
        // Overcommit 2 VMs x 2 VCPUs on 2 PCPUs with lock-heavy work so
        // holders get preempted while holding.
        let mk = || {
            Box::new(
                ScriptProgram::homogeneous(
                    "locky",
                    2,
                    vec![
                        Op::CriticalSection {
                            lock: 0,
                            hold: Cycles(Clock::default().us(200).as_u64()),
                        },
                        Op::Compute(Cycles(Clock::default().us(100).as_u64())),
                    ],
                )
                .looping(),
            )
        };
        let cfg = AsmanConfig {
            machine: MachineConfig {
                pcpus: 2,
                ..MachineConfig::default()
            },
            ..AsmanConfig::default()
        };
        let mut m = asman_machine(
            cfg,
            vec![VmSpec::new("a", 2, mk()), VmSpec::new("b", 2, mk())],
        );
        m.run_until(clk.secs(3));
        let raises: u64 = (0..2).map(|i| m.vm_accounting(i).vcrd_raises).sum();
        assert!(
            raises > 0,
            "contended overcommit must produce over-threshold waits and raises"
        );
    }
}
