//! The locality-of-synchronization model (§4.2).
//!
//! The paper models over-threshold spinlocks as arriving in *localities*:
//! bursts L_i with lasting time X_i, separated by gaps, where Z_i is the
//! interval between the starts of consecutive localities. This module
//! provides the analysis-side counterpart of that model:
//!
//! * [`LocalitySegmenter`] — reconstructs localities from a stream of
//!   over-threshold event timestamps (used to validate the estimator and
//!   to report locality statistics from simulation traces);
//! * [`SyntheticLocalityProcess`] — generates a timestamp stream with
//!   prescribed X/Z distributions (used by property tests to verify that
//!   the learning algorithm tracks the true lasting time).

use asman_sim::{Cycles, SimRng};
use serde::{Deserialize, Serialize};

/// One reconstructed locality of synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Locality {
    /// Start time (first over-threshold event of the burst).
    pub start: Cycles,
    /// Lasting time X_i (start of first event to last event of burst).
    pub lasting: Cycles,
    /// Number of over-threshold events in the burst.
    pub events: u32,
}

/// Groups over-threshold event timestamps into localities: events closer
/// than `merge_gap` belong to the same locality.
#[derive(Clone, Debug)]
pub struct LocalitySegmenter {
    merge_gap: Cycles,
    current: Option<(Cycles, Cycles, u32)>,
    done: Vec<Locality>,
}

impl LocalitySegmenter {
    /// Events within `merge_gap` of the previous one are merged into the
    /// same locality.
    pub fn new(merge_gap: Cycles) -> Self {
        LocalitySegmenter {
            merge_gap,
            current: None,
            done: Vec::new(),
        }
    }

    /// Feed the next over-threshold event timestamp (must be
    /// non-decreasing).
    pub fn push(&mut self, t: Cycles) {
        match self.current {
            Some((start, last, n)) if t.saturating_sub(last) <= self.merge_gap => {
                self.current = Some((start, t, n + 1));
            }
            Some((start, last, n)) => {
                self.done.push(Locality {
                    start,
                    lasting: last - start,
                    events: n,
                });
                self.current = Some((t, t, 1));
            }
            None => self.current = Some((t, t, 1)),
        }
    }

    /// Finish segmentation and return all localities.
    pub fn finish(mut self) -> Vec<Locality> {
        if let Some((start, last, n)) = self.current.take() {
            self.done.push(Locality {
                start,
                lasting: last - start,
                events: n,
            });
        }
        self.done
    }

    /// The gaps Z_i between starts of consecutive localities.
    pub fn intervals(localities: &[Locality]) -> Vec<Cycles> {
        localities
            .windows(2)
            .map(|w| w[1].start - w[0].start)
            .collect()
    }
}

/// Generator of synthetic over-threshold event streams with prescribed
/// locality geometry (for estimator validation).
#[derive(Clone, Debug)]
pub struct SyntheticLocalityProcess {
    /// Mean lasting time of a locality.
    pub mean_lasting: Cycles,
    /// Mean gap between the end of one locality and the start of the next.
    pub mean_gap: Cycles,
    /// Mean spacing of events inside a locality.
    pub intra_spacing: Cycles,
    /// Jitter fraction applied to all three parameters.
    pub jitter: f64,
}

impl SyntheticLocalityProcess {
    /// Generate event timestamps until `horizon`.
    pub fn generate(&self, rng: &mut SimRng, horizon: Cycles) -> Vec<Cycles> {
        let mut out = Vec::new();
        let mut t = Cycles(rng.jitter(self.mean_gap.as_u64().max(1), self.jitter));
        while t < horizon {
            let lasting = Cycles(rng.jitter(self.mean_lasting.as_u64().max(1), self.jitter));
            let end = t + lasting;
            let mut e = t;
            while e <= end && e < horizon {
                out.push(e);
                e += Cycles(
                    rng.jitter(self.intra_spacing.as_u64().max(1), self.jitter)
                        .max(1),
                );
            }
            t = end
                + Cycles(
                    rng.jitter(self.mean_gap.as_u64().max(1), self.jitter)
                        .max(1),
                );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::Clock;

    fn ms(v: u64) -> Cycles {
        Clock::default().ms(v)
    }

    #[test]
    fn segments_two_bursts() {
        let mut seg = LocalitySegmenter::new(ms(5));
        for t in [0, 1, 2, 3] {
            seg.push(ms(t));
        }
        for t in [50, 51, 53] {
            seg.push(ms(t));
        }
        let locs = seg.finish();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0].events, 4);
        assert_eq!(locs[0].lasting, ms(3));
        assert_eq!(locs[1].start, ms(50));
        assert_eq!(locs[1].lasting, ms(3));
        let z = LocalitySegmenter::intervals(&locs);
        assert_eq!(z, vec![ms(50)]);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let seg = LocalitySegmenter::new(ms(5));
        assert!(seg.finish().is_empty());
    }

    #[test]
    fn single_event_is_a_zero_length_locality() {
        let mut seg = LocalitySegmenter::new(ms(5));
        seg.push(ms(7));
        let locs = seg.finish();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].lasting, Cycles::ZERO);
        assert_eq!(locs[0].events, 1);
    }

    #[test]
    fn synthetic_process_matches_prescription() {
        let proc = SyntheticLocalityProcess {
            mean_lasting: ms(10),
            mean_gap: ms(100),
            intra_spacing: ms(1),
            jitter: 0.1,
        };
        let mut rng = SimRng::new(3);
        let events = proc.generate(&mut rng, Clock::default().secs(10));
        assert!(!events.is_empty());
        // Reconstruct and compare the geometry.
        let mut seg = LocalitySegmenter::new(ms(10));
        for &e in &events {
            seg.push(e);
        }
        let locs = seg.finish();
        assert!(
            locs.len() > 50,
            "expected ~90 localities, got {}",
            locs.len()
        );
        let mean_lasting = locs.iter().map(|l| l.lasting.as_u64()).sum::<u64>() / locs.len() as u64;
        let target = ms(10).as_u64();
        assert!(
            (mean_lasting as f64 / target as f64 - 1.0).abs() < 0.25,
            "mean lasting {mean_lasting} vs target {target}"
        );
        let z = LocalitySegmenter::intervals(&locs);
        let mean_z = z.iter().map(|c| c.as_u64()).sum::<u64>() / z.len() as u64;
        let target_z = ms(110).as_u64();
        assert!(
            (mean_z as f64 / target_z as f64 - 1.0).abs() < 0.25,
            "mean interval {mean_z} vs target {target_z}"
        );
    }

    #[test]
    fn timestamps_are_sorted() {
        let proc = SyntheticLocalityProcess {
            mean_lasting: ms(5),
            mean_gap: ms(20),
            intra_spacing: Cycles(100_000),
            jitter: 0.5,
        };
        let mut rng = SimRng::new(11);
        let events = proc.generate(&mut rng, Clock::default().secs(2));
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
    }
}
