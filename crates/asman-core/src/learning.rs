//! The modified Roth–Erev learning algorithm (Algorithms 1–2).
//!
//! When an over-threshold spinlock opens a locality of synchronization
//! L_i, the Monitoring Module must estimate its lasting time X_i — the
//! duration for which the VM's VCPUs should be coscheduled. The paper
//! adapts the reinforcement-learning scheme of Roth & Erev (1995):
//! a propensity q_x is kept for each of N candidate durations; at every
//! adjusting event the propensities decay by a recency factor r and are
//! reinforced by an updating function U that encodes the outcome of the
//! previous estimate:
//!
//! * **under-coscheduling** (`z_i − x_i ≤ Δ`: the next over-threshold
//!   wait arrived almost immediately after coscheduling ended) — all
//!   durations larger than the previous estimate receive the full
//!   reinforcement `1 − e`;
//! * otherwise the previous estimate is reinforced proportionally to how
//!   much the slack `z_i − x_i` grew relative to the previous slack;
//! * every other duration receives the exploration share
//!   `q_x(i) · e / (N − 1)`.
//!
//! The next estimate is the argmax propensity (after the first two
//! events, which select probabilistically).

use asman_sim::{Clock, Cycles, SimRng};
use serde::{Deserialize, Serialize};

/// Parameters of the learning algorithm (the paper's `r`, `s(0)`, `e`,
/// `N`, plus the slack threshold Δ from Figure 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LearningConfig {
    /// Recency parameter `r` ∈ (0, 1): forgetting rate of propensities.
    pub recency: f64,
    /// Experimentation parameter `e` ∈ (0, 1): share of reinforcement
    /// diverted to exploration.
    pub experimentation: f64,
    /// Initial scaling parameter `s(0)`.
    pub initial_scale: f64,
    /// The N candidate lasting times X = {x₁…x_N}.
    pub values: Vec<Cycles>,
    /// Δ: if the gap between coscheduling end and the next over-threshold
    /// spinlock is at most this, the estimate was too short.
    pub delta_slack: Cycles,
    /// Upper clamp on the slack-growth reinforcement ratio, keeping
    /// propensities finite when the previous slack was tiny.
    pub ratio_cap: f64,
    /// Stabilization of Algorithm 2 (see module docs): when the estimate
    /// over-covers its locality (slack > Δ and the growth ratio r < 1),
    /// the unearned share `(1 − r)·(1 − e)` is redirected to the
    /// candidates *below* the current estimate, giving the estimator a
    /// downward path. The algorithm as printed in the paper only ever
    /// reinforces upward (its argmax can ratchet to the longest duration
    /// and stay there); this flag makes Figure 6's stated ideal —
    /// `x_i = X_i` — reachable from both sides. Disable to reproduce the
    /// verbatim algorithm.
    pub downward_share: bool,
}

impl Default for LearningConfig {
    fn default() -> Self {
        let clk = Clock::default();
        LearningConfig {
            recency: 0.1,
            experimentation: 0.2,
            initial_scale: 1.0,
            // Geometric 5 ms … 640 ms: localities of synchronization span
            // from one scheduling slot to several accounting periods (at
            // low online rates a VM's duty cycle stretches an episode of
            // misalignment across hundreds of milliseconds), so the
            // candidate set must cover that range for the
            // under-coscheduling feedback to find the right duration.
            values: (0..8).map(|k| clk.ms(5 << k)).collect(),
            delta_slack: clk.ms(30),
            ratio_cap: 4.0,
            downward_share: true,
        }
    }
}

/// Reinforcement-learning estimator for locality lasting times.
#[derive(Clone, Debug)]
pub struct LastingTimeEstimator {
    cfg: LearningConfig,
    propensities: Vec<f64>,
    /// Number of adjusting events handled so far.
    events: u64,
    /// Index of the estimate chosen at the previous event (x_i).
    prev_choice: Option<usize>,
    /// Previous slack z_{i−1} − x_{i−1}, in cycles (may be negative).
    prev_slack: Option<f64>,
}

impl LastingTimeEstimator {
    /// Create the estimator with the initial propensity
    /// `q_x(0) = s(0) · A / N` (A = mean candidate value).
    pub fn new(cfg: LearningConfig) -> Self {
        assert!(
            cfg.values.len() >= 2,
            "need at least two candidate durations"
        );
        assert!((0.0..1.0).contains(&cfg.recency));
        assert!((0.0..1.0).contains(&cfg.experimentation));
        let n = cfg.values.len() as f64;
        let a = cfg.values.iter().map(|c| c.as_u64() as f64).sum::<f64>() / n;
        let q0 = cfg.initial_scale * a / n;
        // Propensities are dimensionless scores; normalising A to the
        // largest candidate keeps them O(1).
        let scale = cfg.values.last().unwrap().as_u64() as f64;
        let q0 = q0 / scale;
        LastingTimeEstimator {
            propensities: vec![q0.max(f64::MIN_POSITIVE); cfg.values.len()],
            cfg,
            events: 0,
            prev_choice: None,
            prev_slack: None,
        }
    }

    /// Current propensity vector (for inspection/tests).
    pub fn propensities(&self) -> &[f64] {
        &self.propensities
    }

    /// Number of adjusting events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Candidate durations.
    pub fn values(&self) -> &[Cycles] {
        &self.cfg.values
    }

    /// Handle adjusting event i+1 and return the new estimate x_{i+1}.
    ///
    /// `interval` is z_i — the time since the previous adjusting event —
    /// or `None` at the very first event.
    pub fn adjust(&mut self, interval: Option<Cycles>, rng: &mut SimRng) -> Cycles {
        self.events += 1;
        let choice = if self.events <= 2 || self.prev_choice.is_none() {
            // "At the first two adjusting events, the Monitoring Module
            // probabilistically selects feasible amounts."
            rng.weighted_index(&self.propensities)
        } else {
            let prev_idx = self.prev_choice.unwrap();
            let x_i = self.cfg.values[prev_idx].as_u64() as f64;
            let z_i = interval.map(|c| c.as_u64() as f64).unwrap_or(x_i);
            let slack = z_i - x_i;
            self.update_propensities(prev_idx, slack);
            self.prev_slack = Some(slack);
            // x_{i+1} = argmax q_x(i+1); deterministic tie-break by the
            // shorter duration.
            let mut best = 0;
            for (k, &q) in self.propensities.iter().enumerate() {
                if q > self.propensities[best] {
                    best = k;
                }
            }
            // Roth–Erev choice is probabilistic; the paper's argmax
            // simplification cannot discover that a *shorter* duration
            // would also avoid over-threshold spinlocks. When the last
            // estimate over-covered its locality (slack > Δ), trial the
            // next shorter candidate with probability e so the slack
            // comparison gets the data to pull the estimate down.
            if self.cfg.downward_share
                && best > 0
                && slack > self.cfg.delta_slack.as_u64() as f64
                && rng.chance(self.cfg.experimentation)
            {
                best -= 1;
            }
            best
        };
        if self.events <= 2 {
            // Seed the slack history so event 3 has a denominator.
            if let (Some(prev_idx), Some(z)) = (self.prev_choice, interval) {
                let x = self.cfg.values[prev_idx].as_u64() as f64;
                self.prev_slack = Some(z.as_u64() as f64 - x);
            }
        }
        self.prev_choice = Some(choice);
        self.cfg.values[choice]
    }

    /// Algorithm 2: `q_x(i+1) = (1 − r) q_x(i) + U(x, x_i, i, N, e)`.
    fn update_propensities(&mut self, prev_idx: usize, slack: f64) {
        let n = self.propensities.len();
        let e = self.cfg.experimentation;
        let r = self.cfg.recency;
        let under = slack <= self.cfg.delta_slack.as_u64() as f64;
        let explore_share = e / (n as f64 - 1.0);
        let prev_slack = self.prev_slack.unwrap_or(slack);
        let denom = prev_slack.max(1.0);
        let ratio = (slack / denom).clamp(0.0, self.cfg.ratio_cap);
        let new: Vec<f64> = (0..n)
            .map(|k| {
                let q = self.propensities[k];
                let u = if under {
                    if k > prev_idx {
                        // Under-coscheduling: reinforce longer durations.
                        1.0 - e
                    } else {
                        q * explore_share
                    }
                } else if k == prev_idx {
                    // Reinforce the previous estimate in proportion to the
                    // slack growth (z_i − x_i)/(z_{i−1} − x_{i−1}).
                    ratio * (1.0 - e)
                } else if self.cfg.downward_share && ratio < 1.0 && k < prev_idx {
                    // Stabilization: the unearned reinforcement flows to
                    // the shorter candidates (see LearningConfig docs).
                    q * explore_share + (1.0 - ratio) * (1.0 - e) / prev_idx.max(1) as f64
                } else {
                    q * explore_share
                };
                ((1.0 - r) * q + u).max(1e-12)
            })
            .collect();
        self.propensities = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn ms(v: u64) -> Cycles {
        Clock::default().ms(v)
    }

    #[test]
    fn first_estimate_is_a_candidate_value() {
        let mut est = LastingTimeEstimator::new(LearningConfig::default());
        let mut r = rng();
        let x = est.adjust(None, &mut r);
        assert!(est.values().contains(&x));
        assert_eq!(est.events(), 1);
    }

    #[test]
    fn propensities_stay_positive_and_finite() {
        let mut est = LastingTimeEstimator::new(LearningConfig::default());
        let mut r = rng();
        let mut z = None;
        for i in 0..500 {
            let _ = est.adjust(z, &mut r);
            // Alternate tiny and large gaps to stress both branches.
            z = Some(if i % 2 == 0 { ms(1) } else { ms(200) });
            for &q in est.propensities() {
                assert!(q.is_finite() && q > 0.0, "bad propensity {q}");
            }
        }
    }

    #[test]
    fn under_coscheduling_pushes_estimate_up() {
        // Gaps barely longer than the estimate (slack ≈ 0 ≤ Δ) must drive
        // the estimate towards longer durations.
        let mut est = LastingTimeEstimator::new(LearningConfig::default());
        let mut r = rng();
        let mut x = est.adjust(None, &mut r);
        for _ in 0..60 {
            // The next over-threshold arrives immediately after
            // coscheduling ends: z = x + 1ms, slack = 1ms < Δ = 2ms.
            x = est.adjust(Some(x + ms(1)), &mut r);
        }
        let max = *est.values().last().unwrap();
        assert_eq!(x, max, "persistent under-coscheduling → longest estimate");
    }

    #[test]
    fn stationary_long_gaps_keep_estimate_stable() {
        // With generous slack every time, the reinforcement ratio stays
        // ~1 for the chosen value and nothing else gets rewarded. Under
        // the verbatim Algorithm 2 the estimate settles exactly; with the
        // default downward-exploration it may oscillate between adjacent
        // candidates but no further.
        let verbatim = LearningConfig {
            downward_share: false,
            ..LearningConfig::default()
        };
        let mut est = LastingTimeEstimator::new(verbatim);
        let mut r = rng();
        let mut x = est.adjust(None, &mut r);
        let mut last = Vec::new();
        for _ in 0..200 {
            x = est.adjust(Some(x + ms(50)), &mut r);
            last.push(x);
        }
        let tail = &last[150..];
        assert!(
            tail.iter().all(|&v| v == tail[0]),
            "verbatim estimate should converge, tail: {tail:?}"
        );

        // Default (with exploration): at most two adjacent values appear.
        let mut est = LastingTimeEstimator::new(LearningConfig::default());
        let mut x = est.adjust(None, &mut r);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            x = est.adjust(Some(x + ms(50)), &mut r);
            if i >= 150 {
                seen.insert(x.as_u64());
            }
        }
        assert!(
            seen.len() <= 2,
            "exploration may oscillate between adjacent candidates only: {seen:?}"
        );
    }

    #[test]
    fn growing_slack_reinforces_current_choice() {
        let cfg = LearningConfig::default();
        let mut est = LastingTimeEstimator::new(cfg);
        let mut r = rng();
        let x0 = est.adjust(None, &mut r);
        let _x1 = est.adjust(Some(x0 + ms(100)), &mut r);
        let before = est.propensities().to_vec();
        // Slack doubles (well above Δ): ratio 2 → strong reinforcement of
        // the previous choice.
        let prev_idx = est.prev_choice.unwrap();
        est.update_propensities(prev_idx, 2.0 * (ms(100).as_u64() as f64));
        assert!(
            est.propensities()[prev_idx] > before[prev_idx],
            "chosen value must gain propensity"
        );
    }

    #[test]
    fn deterministic_given_seed_and_inputs() {
        let run = |seed| {
            let mut est = LastingTimeEstimator::new(LearningConfig::default());
            let mut r = SimRng::new(seed);
            let mut out = Vec::new();
            let mut z = None;
            for i in 0..50u64 {
                let x = est.adjust(z, &mut r);
                out.push(x);
                z = Some(ms(1 + (i * 7) % 60));
            }
            out
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_value_set() {
        let cfg = LearningConfig {
            values: vec![ms(5)],
            ..LearningConfig::default()
        };
        let _ = LastingTimeEstimator::new(cfg);
    }
}
