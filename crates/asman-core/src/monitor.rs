//! The ASMan Monitoring Module (Algorithm 1).
//!
//! One [`AsmanMonitor`] runs inside each VM's guest kernel. It watches
//! every kernel spinlock waiting time; an over-threshold wait (≥ 2^δ
//! cycles) triggers a *VCRD adjusting event*: the learning algorithm
//! estimates the lasting time x_{i+1} of the locality of synchronization
//! that just opened, the VCRD is raised to HIGH and reported to the
//! Adaptive Scheduler via the `do_vcrd_op` hypercall, and a timer is
//! armed. If the timer fires with no further over-threshold spinlock, the
//! VCRD returns to LOW; a further over-threshold wait instead invokes the
//! next adjusting event (extending the coscheduling window).

use std::sync::{Arc, Mutex};

use asman_guest::{MonitorConfig, SpinObserver, Vcrd, VcrdUpdate};
use asman_sim::{Cycles, SimRng};
use serde::{Deserialize, Serialize};

use crate::learning::{LastingTimeEstimator, LearningConfig};

/// Aggregate statistics kept by the Monitoring Module.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Over-threshold waits seen (= VCRD adjusting events).
    pub adjust_events: u64,
    /// LOW→HIGH transitions requested.
    pub raises: u64,
    /// Adjusting events that arrived while already HIGH (extensions).
    pub extensions: u64,
    /// HIGH→LOW transitions requested (timer expiries).
    pub expiries: u64,
    /// Sum of estimated lasting times, for mean-estimate reporting.
    pub estimate_sum: Cycles,
}

/// The per-VM ASMan Monitoring Module (implements [`SpinObserver`]).
pub struct AsmanMonitor {
    cfg: MonitorConfig,
    estimator: LastingTimeEstimator,
    rng: SimRng,
    state: Vcrd,
    last_adjust_at: Option<Cycles>,
    stats: MonitorStats,
    /// Optional externally-visible mirror of `stats` (the monitor is
    /// boxed into the guest kernel, so callers that want to inspect it
    /// after the run hold this handle).
    shared: Option<Arc<Mutex<MonitorStats>>>,
}

impl AsmanMonitor {
    /// Build a monitor with threshold configuration `cfg`, learning
    /// parameters `learning`, and a deterministic seed.
    pub fn new(cfg: MonitorConfig, learning: LearningConfig, seed: u64) -> Self {
        AsmanMonitor {
            cfg,
            estimator: LastingTimeEstimator::new(learning),
            rng: SimRng::new(seed),
            state: Vcrd::Low,
            last_adjust_at: None,
            stats: MonitorStats::default(),
            shared: None,
        }
    }

    /// Attach a shared statistics mirror and return the handle; every
    /// update to the monitor's statistics is reflected into it.
    pub fn share_stats(&mut self) -> Arc<Mutex<MonitorStats>> {
        let h = Arc::new(Mutex::new(self.stats));
        self.shared = Some(h.clone());
        h
    }

    fn publish(&self) {
        if let Some(h) = &self.shared {
            *h.lock().expect("stats mirror poisoned") = self.stats;
        }
    }

    /// Paper-default monitor: δ = 20, default learning parameters.
    pub fn with_defaults(seed: u64) -> Self {
        AsmanMonitor::new(MonitorConfig::default(), LearningConfig::default(), seed)
    }

    /// Monitoring statistics.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Current guest-side VCRD.
    pub fn vcrd(&self) -> Vcrd {
        self.state
    }

    /// The learning estimator (inspection).
    pub fn estimator(&self) -> &LastingTimeEstimator {
        &self.estimator
    }
}

impl SpinObserver for AsmanMonitor {
    fn on_spinlock_wait(&mut self, now: Cycles, wait: Cycles) -> Option<VcrdUpdate> {
        if wait < self.cfg.threshold() {
            return None;
        }
        // Over-threshold: VCRD adjusting event i+1.
        self.stats.adjust_events += 1;
        let z = self.last_adjust_at.map(|t| now.saturating_sub(t));
        self.last_adjust_at = Some(now);
        let x = self.estimator.adjust(z, &mut self.rng);
        self.stats.estimate_sum += x;
        if self.state == Vcrd::High {
            self.stats.extensions += 1;
        } else {
            self.stats.raises += 1;
        }
        self.state = Vcrd::High;
        self.publish();
        Some(VcrdUpdate {
            vcrd: Vcrd::High,
            expire_in: Some(x),
        })
    }

    fn on_vcrd_timer(&mut self, _now: Cycles) -> Option<VcrdUpdate> {
        if self.state != Vcrd::High {
            return None;
        }
        // No over-threshold spinlock during the estimated interval
        // (otherwise the hypervisor-side epoch would have invalidated
        // this timer): back to LOW.
        self.state = Vcrd::Low;
        self.stats.expiries += 1;
        self.publish();
        Some(VcrdUpdate {
            vcrd: Vcrd::Low,
            expire_in: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::Clock;

    fn ms(v: u64) -> Cycles {
        Clock::default().ms(v)
    }

    fn over() -> Cycles {
        Cycles(1 << 21)
    }

    #[test]
    fn sub_threshold_waits_are_ignored() {
        let mut m = AsmanMonitor::with_defaults(1);
        for w in [0u64, 100, 1 << 10, (1 << 20) - 1] {
            assert!(m.on_spinlock_wait(ms(1), Cycles(w)).is_none());
        }
        assert_eq!(m.stats().adjust_events, 0);
        assert_eq!(m.vcrd(), Vcrd::Low);
    }

    #[test]
    fn over_threshold_raises_high_with_estimate() {
        let mut m = AsmanMonitor::with_defaults(1);
        let u = m.on_spinlock_wait(ms(10), over()).expect("update");
        assert_eq!(u.vcrd, Vcrd::High);
        let x = u.expire_in.expect("estimate");
        assert!(m.estimator().values().contains(&x));
        assert_eq!(m.vcrd(), Vcrd::High);
        assert_eq!(m.stats().raises, 1);
    }

    #[test]
    fn timer_returns_to_low_exactly_once() {
        let mut m = AsmanMonitor::with_defaults(1);
        m.on_spinlock_wait(ms(10), over());
        let d = m.on_vcrd_timer(ms(20)).expect("expiry update");
        assert_eq!(d.vcrd, Vcrd::Low);
        assert_eq!(m.vcrd(), Vcrd::Low);
        assert!(m.on_vcrd_timer(ms(30)).is_none(), "already LOW");
        assert_eq!(m.stats().expiries, 1);
    }

    #[test]
    fn over_threshold_while_high_extends() {
        let mut m = AsmanMonitor::with_defaults(1);
        m.on_spinlock_wait(ms(10), over());
        let u = m.on_spinlock_wait(ms(12), over()).expect("extension");
        assert_eq!(u.vcrd, Vcrd::High);
        assert!(u.expire_in.is_some());
        assert_eq!(m.stats().raises, 1);
        assert_eq!(m.stats().extensions, 1);
        assert_eq!(m.stats().adjust_events, 2);
    }

    #[test]
    fn shared_stats_mirror_tracks_updates() {
        let mut m = AsmanMonitor::with_defaults(1);
        let h = m.share_stats();
        assert_eq!(h.lock().unwrap().raises, 0);
        m.on_spinlock_wait(ms(10), over());
        assert_eq!(h.lock().unwrap().raises, 1);
        m.on_vcrd_timer(ms(60));
        assert_eq!(h.lock().unwrap().expiries, 1);
    }

    #[test]
    fn custom_delta_changes_sensitivity() {
        let mut m = AsmanMonitor::new(MonitorConfig { delta: 16 }, LearningConfig::default(), 7);
        assert!(m.on_spinlock_wait(ms(1), Cycles(1 << 17)).is_some());
    }
}
