//! The Monitoring Module wired into a real guest kernel: over-threshold
//! waits produced by actual lock-holder preemption drive Algorithm 1.

use asman_core::AsmanMonitor;
use asman_guest::{Effects, GuestCosts, GuestKernel, GuestWork, Vcrd};
use asman_sim::Cycles;
use asman_workloads::{Op, ScriptProgram};

fn costs_no_timer() -> GuestCosts {
    GuestCosts {
        timer_hold: Cycles(0),
        ..GuestCosts::default()
    }
}

#[test]
fn holder_preemption_raises_vcrd_through_the_kernel() {
    // Thread 0 holds lock 0 for a long critical section; we preempt it
    // mid-hold and let thread 1 spin across an over-threshold gap.
    let cs = |hold| Op::CriticalSection {
        lock: 0,
        hold: Cycles(hold),
    };
    let p = ScriptProgram::new("lhp", vec![vec![cs(10_000)], vec![cs(500)]]);
    let monitor = AsmanMonitor::with_defaults(7);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(monitor));
    let mut e = Effects::default();
    // Holder starts, gets preempted mid-hold.
    g.dispatch(0, Cycles(0), Cycles(0), &mut e);
    g.preempt(0, Cycles(4_000));
    // Waiter spins across a > 2^20-cycle absence.
    assert_eq!(
        g.dispatch(1, Cycles(5_000), Cycles(0), &mut e),
        GuestWork::Spin { thread: 1 }
    );
    let resume = Cycles(5_000 + (1 << 21));
    g.dispatch(0, resume, Cycles(0), &mut e);
    e.clear();
    g.work_complete(0, resume + Cycles(6_000), &mut e);
    // The grant to thread 1 recorded an over-threshold wait; the monitor
    // must have requested a VCRD raise with an estimate.
    let update = e.vcrd.expect("hypercall requested");
    assert_eq!(update.vcrd, Vcrd::High);
    let x = update.expire_in.expect("lasting-time estimate");
    assert!(x >= Cycles(1), "estimate must be positive");
}

#[test]
fn sub_threshold_traffic_never_raises() {
    // Uncontended critical sections: plenty of waits, all tiny.
    let p = ScriptProgram::homogeneous(
        "quiet",
        2,
        vec![
            Op::CriticalSection {
                lock: 0,
                hold: Cycles(500),
            },
            Op::Compute(Cycles(50_000)),
        ],
    );
    let monitor = AsmanMonitor::with_defaults(7);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(monitor));
    // Single monotone clock: complete the earliest pending segment.
    let mut e = Effects::default();
    let mut now = Cycles(0);
    let mut deadline: [Option<Cycles>; 2] = [None, None];
    let set = |v: usize, w: GuestWork, now: Cycles, dl: &mut [Option<Cycles>; 2]| {
        dl[v] = match w {
            GuestWork::Timed { dur, .. } => Some(now + dur),
            _ => None,
        };
    };
    let w0 = g.dispatch(0, now, Cycles(0), &mut e);
    set(0, w0, now, &mut deadline);
    let w1 = g.dispatch(1, now + Cycles(25_000), Cycles(0), &mut e);
    set(1, w1, now + Cycles(25_000), &mut deadline);
    for _ in 0..200 {
        let refresh: Vec<usize> = e.refresh_vcpus.drain(..).collect();
        for v in refresh {
            let w = g.dispatch_work(v, now, &mut e);
            set(v, w, now, &mut deadline);
        }
        let Some((d, v)) = (0..2).filter_map(|v| deadline[v].map(|d| (d, v))).min() else {
            break;
        };
        now = now.max(d);
        let w = g.work_complete(v, now, &mut e);
        set(v, w, now, &mut deadline);
        assert!(e.vcrd.is_none(), "no raise expected for µs-scale waits");
    }
    assert!(g.stats().lock_acquisitions > 0);
}
