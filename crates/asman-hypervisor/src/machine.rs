//! The virtual machine monitor model: PCPUs, VCPUs, VMs and the
//! discrete-event scheduling loop.
//!
//! The scheduler is the Xen **Credit scheduler** (proportional-share
//! weights, 10 ms accounting slots, 30 ms credit assignment, BOOST
//! priority for waking VCPUs, idle-stealing load balancing, work- and
//! non-work-conserving cap modes), extended with the coscheduling
//! machinery of the paper:
//!
//! * [`CoschedPolicy::Static`] — always coschedule VMs flagged as
//!   concurrent (the authors' earlier VEE'09 system, `CON`);
//! * [`CoschedPolicy::Adaptive`] — ASMan: coschedule while the guest's
//!   Monitoring Module holds the VCRD HIGH. On a LOW→HIGH hypercall the
//!   VM's runnable VCPUs are relocated to distinct PCPU runqueues
//!   (Algorithm 3, lines 8–15) and, at scheduling events, the dispatching
//!   PCPU sends IPIs that temporarily raise the priority of sibling VCPUs
//!   so the whole VM comes online together (Algorithm 4).
//!
//! Timing realism notes: per-PCPU accounting ticks are staggered (as on
//! real hardware, where each CPU's local APIC timer has its own phase),
//! and wake-ups incur a small random dispatch latency (interrupt/softirq
//! noise). Both are what desynchronizes sibling VCPUs under the plain
//! Credit scheduler and creates the lock-holder-preemption exposure that
//! the paper measures.

use asman_guest::{Effects, GuestKernel, GuestWork, Vcrd, VcrdUpdate};
use asman_sim::audit::{OracleQueue, SimQueue};
use asman_sim::flight::{CatMask, FlightEv, FlightEvent, FlightRecorder, TraceCat};
use asman_sim::registry::{MetricsRegistry, QuantileHist};
use asman_sim::{merge_streams, Cycles, EventQueue, Fnv, SimRng, TraceBuffer};

use crate::config::{CapMode, CoschedPolicy, MachineConfig, VmSpec};
use crate::metrics::{SchedEvent, SchedEventKind, VmAccounting};

/// VCPU scheduling state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VState {
    /// Waiting in the runqueue of `assigned` PCPU.
    Runnable,
    /// Currently on its assigned PCPU.
    Running,
    /// Nothing runnable in the guest; not in any runqueue.
    Blocked,
}

struct Vcpu {
    vm: usize,
    /// VM-local index.
    slot: usize,
    state: VState,
    assigned: usize,
    credit: i64,
    boost: bool,
    /// Invalidates in-flight `WorkDone` events.
    epoch: u64,
    /// Start of the current unaccounted running span.
    last_charge: Cycles,
    /// Parked by cap enforcement (set/cleared only at accounting
    /// events, like Xen's CSCHED_PRI_TS_PARKED).
    parked: bool,
    /// Set on involuntary preemption: the next dispatch pays the cache
    /// warm-up penalty.
    cold: bool,
    /// PCPU the VCPU last ran on (migration implies cold caches).
    last_ran: Option<usize>,
    /// Set while the VCPU's installed guest work is a kernel spin
    /// (Pause-Loop-Exit style detection for the OutOfVm policy).
    spinning_since: Option<Cycles>,
    /// Relaxed coscheduling: accumulated time descheduled while at least
    /// one sibling ran.
    skew: Cycles,
    /// When the VCPU last blocked (None while runnable/running).
    blocked_since: Option<Cycles>,
    /// Blocked time accumulated since the last credit assignment.
    blocked_accum: Cycles,
    /// When the VCPU last became runnable via a wake delivery. Stamped
    /// only while scheduler-latency telemetry is enabled; consumed by
    /// the next dispatch (wakeup→dispatch latency).
    wake_at: Option<Cycles>,
    /// When the VCPU was last involuntarily preempted. Stamped only
    /// while scheduler-latency telemetry is enabled; consumed by the
    /// next dispatch (preemption-hold duration).
    preempt_at: Option<Cycles>,
    /// Position in `assigned`'s runqueue while Runnable; `NOT_QUEUED`
    /// otherwise. Keeps dequeues O(1) instead of a linear scan.
    runq_pos: usize,
}

/// `runq_pos` sentinel for a VCPU that is not in any runqueue.
const NOT_QUEUED: usize = usize::MAX;

struct Pcpu {
    runq: Vec<usize>,
    running: Option<usize>,
}

struct Vm {
    name: String,
    weight: u32,
    cap: CapMode,
    concurrent_hint: bool,
    finite: bool,
    kernel: GuestKernel,
    vcpu_ids: Vec<usize>,
    vcrd: Vcrd,
    vcrd_epoch: u64,
    vcrd_high_since: Cycles,
    last_cosched: Option<Cycles>,
    acct: VmAccounting,
    /// VCPUs currently online (concurrency histogram bookkeeping).
    online_count: usize,
    co_last: Cycles,
    /// The VM was live-migrated away: its slot stays as a tombstone (so
    /// VM/VCPU indices remain stable) but it holds a zero-thread stub
    /// kernel, carries no weight, and never schedules again.
    evacuated: bool,
    /// Incarnation counter of this slot. Bumped only when a tombstone
    /// is *reused* for a different VM (never on extraction alone, so an
    /// aborted migration's rollback keeps its in-flight events valid).
    /// Wake and sleep-timer events carry the generation they were armed
    /// for and are dropped on mismatch; external holders of a
    /// `(vm, generation)` pair can detect staleness via
    /// [`Machine::vm_generation`].
    generation: u32,
}

/// A VM lifted off its host for live migration: everything needed to
/// resume it bit-exactly on another [`Machine`] via
/// [`Machine::inject_vm`]. Produced by [`Machine::extract_vm`].
pub struct VmImage {
    /// VM name (stable across hosts).
    pub name: String,
    /// Credit-scheduler weight.
    pub weight: u32,
    /// Cap mode.
    pub cap: CapMode,
    /// Static concurrent-workload hint (for `CoschedPolicy::Static`).
    pub concurrent_hint: bool,
    /// Whether the program is finite (run-to-completion semantics).
    pub finite: bool,
    /// The guest kernel, moved by value: threads, locks, barriers,
    /// semaphores, stats — the entire guest state travels.
    pub kernel: GuestKernel,
    /// VMM-side accounting, accumulated across hosts.
    pub acct: VmAccounting,
}

impl VmImage {
    /// Number of VCPUs the destination host must provide.
    pub fn vcpus(&self) -> usize {
        self.kernel.vcpu_count()
    }

    /// Cumulative spin/VCRD/online counters carried by this image, in
    /// exactly [`Machine::vm_counters`]' units. An image's counters are
    /// *later* than the worker-captured barrier snapshot: extraction
    /// closes in-progress spin segments (via the final preempts), so the
    /// cluster reconciles its per-VM baselines against this value when a
    /// VM migrates or departs — otherwise the closing tail is smeared
    /// into the next epoch on the destination, or lost with the VM.
    pub fn counters(&self) -> VmCounters {
        let st = self.kernel.stats();
        VmCounters {
            spin: (st.spin_kernel_cycles + st.spin_barrier_cycles + st.spin_pipeline_cycles)
                .as_u64(),
            vcrd_high: self.acct.vcrd_high_cycles.as_u64(),
            online: self.acct.total_online().as_u64(),
        }
    }
}

/// Final accounting of a VM destroyed with [`Machine::destroy_vm`]: the
/// numbers a cluster report needs after the kernel itself is gone.
#[derive(Clone, Debug)]
pub struct VmRetirement {
    /// VM name.
    pub name: String,
    /// VCPU count the VM had.
    pub vcpus: usize,
    /// Cumulative spin/VCRD/online counters at destruction.
    pub counters: VmCounters,
    /// Cycles of useful (non-spin) guest work completed.
    pub useful_cycles: u64,
    /// Whether a finite program had run to completion.
    pub finished: bool,
}

#[derive(Clone, Copy, Debug)]
/// Event payload of the machine's calendar queue. Entity indices are
/// `u32` so the whole enum packs into 16 bytes — the event queue moves
/// these on every sift, and the simulation never has 4 billion VCPUs.
///
/// Public so the machine can be instantiated over any
/// [`SimQueue`]`<Ev>` implementation (see [`OracleMachine`]); the
/// variants themselves are an implementation detail and carry no
/// stability promise.
pub enum Ev {
    /// Per-PCPU accounting tick (every scheduling slot, staggered).
    Tick {
        /// The PCPU whose tick fires.
        pcpu: u32,
    },
    /// Global 30 ms credit assignment.
    Assign,
    /// Run the scheduler on one PCPU.
    Reschedule {
        /// The PCPU to reschedule.
        pcpu: u32,
    },
    /// A VCPU's installed guest work segment completed.
    WorkDone {
        /// The VCPU whose work finished.
        vcpu: u32,
        /// Invalidates the event if the VCPU was rescheduled meanwhile.
        epoch: u64,
    },
    /// A sleeping guest thread's timer expired.
    SleepTimer {
        /// VM index.
        vm: u32,
        /// VM-local thread index.
        thread: u32,
        /// Slot generation the timer was armed for; invalidates the
        /// event if the slot has been reused by a different VM since.
        gen: u32,
    },
    /// Expiry of a VCRD HIGH period raised with a deadline.
    VcrdTimer {
        /// VM index.
        vm: u32,
        /// Invalidates the event if the VCRD was re-raised meanwhile.
        epoch: u64,
    },
    /// Coscheduling IPI delivery.
    Ipi {
        /// Target VCPU.
        vcpu: u32,
    },
    /// Delayed wake-up delivery (interrupt latency jitter).
    Wake {
        /// Target VCPU.
        vcpu: u32,
        /// Slot generation the wake was armed for; invalidates the
        /// event if the slot has been reused by a different VM since.
        gen: u32,
    },
}

/// The simulated physical machine: PCPUs, the VMM scheduler, and the VMs
/// with their guest kernels.
///
/// Generic over the event-queue implementation `Q`. The default is the
/// optimized [`EventQueue`]; [`OracleMachine`] instantiates the same
/// scheduler logic over the naive [`OracleQueue`], with every cached
/// lookup (runqueue position index, idle/queued masks, scratch buffers)
/// replaced by a from-scratch scan wherever `Q::NAIVE` is set.
pub struct Machine<Q: SimQueue<Ev> = EventQueue<Ev>> {
    cfg: MachineConfig,
    now: Cycles,
    events: Q,
    pcpus: Vec<Pcpu>,
    vcpus: Vec<Vcpu>,
    vms: Vec<Vm>,
    rng: SimRng,
    total_weight: u64,
    events_processed: u64,
    run_wall: std::time::Duration,
    sched_trace: TraceBuffer<SchedEvent>,
    /// Hypervisor-layer flight recorder (sched/credit/cosched
    /// categories). Disabled by default; every record site is guarded by
    /// a one-word mask test, so the disabled cost is a load + branch.
    flight: FlightRecorder,
    /// Bit p set ⇔ PCPU p has no running VCPU. Lets tickle sites find
    /// the first idle PCPU without scanning the PCPU table.
    idle_mask: u128,
    /// Bit p set ⇔ PCPU p's runqueue is non-empty. Lets the stealing
    /// scan skip PCPUs with nothing to steal.
    queued_mask: u128,
    /// Scratch for `assign_credit` (avoids a per-VM allocation every
    /// 30 ms accounting interval).
    scratch_actives: Vec<u64>,
    /// Reusable guest-effects buffer for the hot event handlers.
    scratch_fx: Effects,
    /// Scratch for `relocate_siblings` (avoids an allocation per IPI
    /// burst).
    scratch_occupied: Vec<bool>,
    /// Flight-recorder streams drained from guests extracted by live
    /// migration, already rebased to this host's global indices. Merged
    /// into [`Machine::flight_events`] so an evacuated VM's history is
    /// not lost with its kernel.
    adopted_streams: Vec<Vec<FlightEvent>>,
    /// Advertised capacity derate in percent (0 = healthy). Purely an
    /// admission-control signal for the cluster layer: it shrinks
    /// [`Machine::effective_pcpus`] but never changes engine timing, so
    /// arming it cannot perturb a host's event stream.
    derate_pct: u32,
    /// Scheduler-latency telemetry (wakeup→dispatch, preemption-hold).
    /// `None` by default: the stamp sites then cost a single branch and
    /// no VCPU timestamps are ever taken, so artifacts are unchanged.
    lat: Option<Box<SchedLatency>>,
    /// When set, [`Machine::inject_vm`] reuses the lowest-index
    /// tombstone slot of matching VCPU count (bumping its generation)
    /// instead of appending a new slot. Off by default so static-
    /// population experiments keep their exact slot layout and digests;
    /// churned soaks enable it to bound slot growth.
    reuse_slots: bool,
    /// Flight-recorder arming spec (`mask`, per-category capacity),
    /// remembered so guests injected or created *after*
    /// [`Machine::enable_flight`] get recorders too — enablement at one
    /// instant must not silently exempt later arrivals.
    flight_spec: Option<(CatMask, usize)>,
    /// Invariant-auditor state (shadow ledgers, injected mutations).
    /// Costs nothing unless the `audit` feature is compiled in.
    #[cfg(feature = "audit")]
    audit: AuditState,
}

/// State of the compiled-in invariant auditor (`audit` feature): a
/// shadow credit ledger per VM, the injected mutation knobs, and the
/// last checkpoint time for monotonicity checks.
#[cfg(feature = "audit")]
#[derive(Clone, Debug, Default)]
struct AuditState {
    /// Expected per-VM sum of VCPU credits. Updated in lockstep with
    /// every credit assignment and charge; any divergence between this
    /// and the actual sum means a burn or assignment was lost,
    /// duplicated, or mis-sized.
    ledger: Vec<i64>,
    /// Simulated time of the previous checkpoint (monotonicity check).
    last_checkpoint: Cycles,
    /// Number of checkpoints executed (so tests can assert coverage).
    checkpoints: u64,
    /// Injected off-by-`skew` error added to every credit burn but not
    /// to the shadow ledger — the mutation the auditor must catch.
    skew: i64,
    /// Injected fault: priority computation ignores BOOST, silently
    /// demoting freshly woken VCPUs. The differential harness must flag
    /// the resulting schedule divergence against the oracle.
    boost_skip: bool,
}

/// Engine throughput snapshot: how many events the machine has popped,
/// how much host wall time the run drivers spent popping them, and the
/// derived rate. Purely observational — reading it never perturbs the
/// simulation.
#[derive(Clone, Copy, Debug)]
pub struct PerfSnapshot {
    /// Events popped from the queue since construction.
    pub events: u64,
    /// Host wall time accumulated inside the run drivers.
    pub wall: std::time::Duration,
    /// `events / wall`, or 0 if no time has been recorded.
    pub events_per_sec: f64,
}

/// Scheduler-latency distributions, observed purely from existing state
/// transitions (no extra events, no RNG draws), so enabling them cannot
/// perturb the simulation. Durations are in cycles.
#[derive(Clone, Debug, Default)]
pub struct SchedLatency {
    /// Wake delivery (Blocked→Runnable) to the dispatch that next put
    /// the VCPU on a PCPU.
    pub wake_to_dispatch: QuantileHist,
    /// Involuntary preemption (Running→Runnable) to the dispatch that
    /// got the VCPU back on a PCPU.
    pub preempt_hold: QuantileHist,
}

/// Cumulative telemetry counters of one resident VM, as the cluster
/// balancer consumes them. A snapshot is taken by the worker that
/// advanced the host — inside the parallel phase of a cluster epoch —
/// so the serial balancer section never rescans guest kernels or
/// accounting registries at the barrier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Cycles burned busy-waiting (kernel locks + barriers + pipeline
    /// flags), cumulative since the VM booted.
    pub spin: u64,
    /// Cycles the VMM saw the VM's VCRD held HIGH, cumulative.
    pub vcrd_high: u64,
    /// Total VCPU-online cycles, cumulative.
    pub online: u64,
}

/// A machine is a self-contained deterministic simulation (owned event
/// queue, owned guests, owned RNG), so it can be advanced on a worker
/// thread. The cluster driver relies on this to parallelize intra-epoch
/// host advancement; this assertion turns any future non-`Send` field
/// into a compile error at the point of introduction.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<OracleMachine>();
};

impl Machine {
    /// Build a machine with the given VMs over the optimized event
    /// queue. VCPUs are spread round-robin over the PCPU runqueues and
    /// everything starts runnable at t = 0.
    pub fn new(cfg: MachineConfig, specs: Vec<VmSpec>) -> Self {
        Self::build(cfg, specs)
    }
}

/// A [`Machine`] over the naive [`OracleQueue`]: same scheduler
/// semantics, dumbest-possible data structures. Built with
/// [`Machine::build`]; the differential audit harness runs one of these
/// in lockstep with the optimized machine and diffs every observable.
pub type OracleMachine = Machine<OracleQueue<Ev>>;

impl<Q: SimQueue<Ev>> Machine<Q> {
    /// Build a machine with the given VMs over any event-queue
    /// implementation (see [`Machine::new`] for the optimized default).
    pub fn build(cfg: MachineConfig, specs: Vec<VmSpec>) -> Self {
        assert!(cfg.pcpus > 0, "need at least one PCPU");
        assert!(cfg.pcpus <= 128, "the idle/queued masks hold 128 PCPUs");
        assert!(!specs.is_empty(), "need at least one VM");
        let mut vms = Vec::with_capacity(specs.len());
        let mut vcpus = Vec::new();
        let mut pcpus: Vec<Pcpu> = (0..cfg.pcpus)
            .map(|_| Pcpu {
                runq: Vec::new(),
                running: None,
            })
            .collect();
        let mut total_weight = 0u64;
        let mut next_pcpu = 0usize;
        for (vm_idx, spec) in specs.into_iter().enumerate() {
            assert!(
                spec.vcpus <= cfg.pcpus,
                "a VM cannot have more VCPUs than the machine has PCPUs"
            );
            total_weight += spec.weight as u64;
            let finite = spec.program.finite();
            let kernel = GuestKernel::new(spec.program, spec.vcpus, spec.costs, spec.observer);
            let mut vcpu_ids = Vec::with_capacity(spec.vcpus);
            for slot in 0..spec.vcpus {
                let id = vcpus.len();
                vcpu_ids.push(id);
                let assigned = next_pcpu % cfg.pcpus;
                next_pcpu += 1;
                let runq_pos = pcpus[assigned].runq.len();
                pcpus[assigned].runq.push(id);
                vcpus.push(Vcpu {
                    vm: vm_idx,
                    slot,
                    state: VState::Runnable,
                    assigned,
                    credit: 0,
                    boost: false,
                    epoch: 0,
                    last_charge: Cycles::ZERO,
                    parked: false,
                    cold: false,
                    last_ran: None,
                    spinning_since: None,
                    skew: Cycles::ZERO,
                    blocked_since: None,
                    blocked_accum: Cycles::ZERO,
                    wake_at: None,
                    preempt_at: None,
                    runq_pos,
                });
            }
            vms.push(Vm {
                name: spec.name,
                weight: spec.weight,
                cap: spec.cap,
                concurrent_hint: spec.concurrent_hint,
                finite,
                kernel,
                vcpu_ids,
                vcrd: Vcrd::Low,
                vcrd_epoch: 0,
                vcrd_high_since: Cycles::ZERO,
                last_cosched: None,
                acct: VmAccounting::new(spec.vcpus),
                online_count: 0,
                co_last: Cycles::ZERO,
                evacuated: false,
                generation: 0,
            });
        }
        // All PCPUs start idle; the initial runqueues are all non-empty
        // or empty per the round-robin spread above.
        let idle_mask = if cfg.pcpus == 128 {
            u128::MAX
        } else {
            (1u128 << cfg.pcpus) - 1
        };
        let queued_mask = pcpus
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.runq.is_empty())
            .fold(0u128, |m, (i, _)| m | (1u128 << i));
        let mut m = Machine {
            rng: SimRng::new(cfg.seed),
            events: Q::fresh(1024),
            now: Cycles::ZERO,
            #[cfg(feature = "audit")]
            audit: AuditState {
                ledger: vec![0; vms.len()],
                ..AuditState::default()
            },
            pcpus,
            vcpus,
            vms,
            total_weight,
            events_processed: 0,
            run_wall: std::time::Duration::ZERO,
            sched_trace: TraceBuffer::disabled(),
            flight: FlightRecorder::disabled(),
            idle_mask,
            queued_mask,
            scratch_actives: Vec::new(),
            scratch_fx: Effects::default(),
            scratch_occupied: Vec::new(),
            adopted_streams: Vec::new(),
            derate_pct: 0,
            lat: None,
            reuse_slots: false,
            flight_spec: None,
            cfg,
        };
        // Initial credit: one assignment interval's worth, so the first
        // 30 ms behave like steady state.
        m.assign_credit();
        // Staggered per-PCPU ticks and the global assignment cadence.
        let slot = m.cfg.slot();
        for p in 0..m.cfg.pcpus {
            let phase = slot.mul_ratio(p as u64, m.cfg.pcpus as u64);
            m.events.schedule(phase + slot, Ev::Tick { pcpu: p as u32 });
            m.events.schedule(Cycles::ZERO, Ev::Reschedule { pcpu: p as u32 });
        }
        m.events.schedule(m.cfg.assign_interval(), Ev::Assign);
        m
    }

    // ------------------------------------------------------------------
    // Public accessors
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Advertise a capacity derate of `pct` percent (a degraded host
    /// under a fault plan). The knob only changes what
    /// [`Machine::effective_pcpus`] reports to admission control —
    /// engine timing is untouched, so arming it never perturbs the
    /// host's own event stream.
    pub fn set_capacity_derate(&mut self, pct: u32) {
        assert!(pct < 100, "a 100% derate is a crash, not a slowdown");
        self.derate_pct = pct;
    }

    /// Current advertised capacity derate in percent (0 = healthy).
    pub fn capacity_derate(&self) -> u32 {
        self.derate_pct
    }

    /// PCPUs advertised to cluster admission control after the derate,
    /// never below one.
    pub fn effective_pcpus(&self) -> usize {
        (self.cfg.pcpus * (100 - self.derate_pct as usize) / 100).max(1)
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// VM name.
    pub fn vm_name(&self, vm: usize) -> &str {
        &self.vms[vm].name
    }

    /// Global VCPU indices belonging to a VM, in slot order.
    pub fn vm_vcpu_ids(&self, vm: usize) -> &[usize] {
        &self.vms[vm].vcpu_ids
    }

    /// The guest kernel of a VM (measurement access).
    pub fn vm_kernel(&self, vm: usize) -> &GuestKernel {
        &self.vms[vm].kernel
    }

    /// Mutable guest kernel (e.g. to gate wait traces to a window).
    pub fn vm_kernel_mut(&mut self, vm: usize) -> &mut GuestKernel {
        &mut self.vms[vm].kernel
    }

    /// VMM-side accounting for a VM.
    pub fn vm_accounting(&self, vm: usize) -> &VmAccounting {
        &self.vms[vm].acct
    }

    /// The VMM's current view of a VM's VCRD.
    pub fn vm_vcrd(&self, vm: usize) -> Vcrd {
        self.vms[vm].vcrd
    }

    /// How many of a VM's VCPUs are online right now (diagnostics).
    pub fn vm_online_count(&self, vm: usize) -> usize {
        self.vms[vm].online_count
    }

    /// Per-VCPU `(state-discriminant, credit)` snapshot for diagnostics:
    /// 0 = runnable, 1 = running, 2 = blocked.
    pub fn vcpu_snapshot(&self, vm: usize) -> Vec<(u8, i64)> {
        self.vms[vm]
            .vcpu_ids
            .iter()
            .map(|&v| {
                let d = match self.vcpus[v].state {
                    VState::Runnable => 0,
                    VState::Running => 1,
                    VState::Blocked => 2,
                };
                (d, self.vcpus[v].credit)
            })
            .collect()
    }

    /// Total events processed so far (engine benchmarking).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Engine throughput so far: events popped, wall time spent in the
    /// run drivers, and events/sec.
    pub fn perf(&self) -> PerfSnapshot {
        let secs = self.run_wall.as_secs_f64();
        PerfSnapshot {
            events: self.events_processed,
            wall: self.run_wall,
            events_per_sec: if secs > 0.0 {
                self.events_processed as f64 / secs
            } else {
                0.0
            },
        }
    }

    /// Check the machine's structural invariants, panicking on any
    /// violation. Intended for tests and debug-build stress harnesses:
    ///
    /// * a PCPU's `running` VCPU is `Running`, assigned to it, and not
    ///   queued anywhere;
    /// * every runqueue entry is `Runnable`, assigned to that PCPU, and
    ///   its `runq_pos` index points back at its exact queue position;
    /// * every `Runnable` VCPU appears in exactly its assigned PCPU's
    ///   runqueue; `Blocked` VCPUs appear in none;
    /// * the idle and queued masks agree with the PCPU table.
    pub fn check_invariants(&self) {
        let mut queued_seen = 0usize;
        for (p, pc) in self.pcpus.iter().enumerate() {
            if let Some(v) = pc.running {
                assert_eq!(self.vcpus[v].state, VState::Running, "running vcpu {v}");
                assert_eq!(self.vcpus[v].assigned, p, "running vcpu {v} assignment");
                assert_eq!(self.vcpus[v].runq_pos, NOT_QUEUED, "running vcpu {v} queued");
                assert_eq!(self.idle_mask & (1u128 << p), 0, "pcpu {p} marked idle");
            } else {
                assert_ne!(self.idle_mask & (1u128 << p), 0, "pcpu {p} not marked idle");
            }
            assert_eq!(
                self.queued_mask & (1u128 << p) != 0,
                !pc.runq.is_empty(),
                "pcpu {p} queued-mask bit"
            );
            for (pos, &v) in pc.runq.iter().enumerate() {
                assert_eq!(self.vcpus[v].state, VState::Runnable, "queued vcpu {v}");
                assert_eq!(self.vcpus[v].assigned, p, "queued vcpu {v} assignment");
                assert_eq!(self.vcpus[v].runq_pos, pos, "vcpu {v} position index");
                queued_seen += 1;
            }
        }
        // Position-index equality above already rules out duplicates
        // within a queue; cross-queue duplicates would break the per-VCPU
        // totals here.
        let runnable = self
            .vcpus
            .iter()
            .filter(|v| v.state == VState::Runnable)
            .count();
        assert_eq!(queued_seen, runnable, "every runnable vcpu queued once");
        for (i, v) in self.vcpus.iter().enumerate() {
            if v.state != VState::Runnable {
                assert_eq!(v.runq_pos, NOT_QUEUED, "non-runnable vcpu {i} queued");
            }
        }
    }

    /// Number of auditor checkpoints executed so far (`audit` feature),
    /// so tests can assert the auditor actually ran.
    #[cfg(feature = "audit")]
    pub fn audit_checkpoints(&self) -> u64 {
        self.audit.checkpoints
    }

    /// Arm the credit-burn mutation: every subsequent charge burns
    /// `skew` extra credit without telling the shadow ledger. Exists
    /// purely so the mutation test can prove the invariant auditor
    /// catches a hot-path off-by-one; never armed in normal runs.
    #[cfg(feature = "audit")]
    pub fn audit_inject_credit_skew(&mut self, skew: i64) {
        self.audit.skew = skew;
    }

    /// Arm the BOOST-skip mutation: priority computation ignores the
    /// BOOST class from now on, so freshly woken VCPUs no longer preempt
    /// running ones. Exists purely so the differential mutation test can
    /// prove the oracle harness flags a scheduling-policy fault (the
    /// shadow credit ledger alone would stay green — no credit is
    /// miscounted); never armed in normal runs.
    #[cfg(feature = "audit")]
    pub fn audit_inject_boost_skip(&mut self) {
        self.audit.boost_skip = true;
    }

    /// Re-mark a live VM as an evacuated tombstone *without* touching
    /// anything else — the exact footprint of a migration rollback that
    /// forgot to clear the source tombstone. Exists purely so the
    /// injected-fault test can prove the cluster auditor catches that
    /// bug; never armed in normal runs.
    #[cfg(feature = "audit")]
    pub fn audit_mark_evacuated(&mut self, vm: usize) {
        self.vms[vm].evacuated = true;
    }

    /// The invariant auditor's checkpoint, run at every accounting
    /// event (per-PCPU ticks and the global credit assignment):
    ///
    /// * simulated time never moves backwards between checkpoints;
    /// * per-VM credit conservation — the actual sum of VCPU credits
    ///   equals the shadow ledger maintained in lockstep with every
    ///   assignment and burn;
    /// * the structural invariants of [`Machine::check_invariants`]
    ///   (runqueue position index, idle/queued masks, state agreement);
    /// * the event queue's own internal invariants (heap property,
    ///   lifetime counters).
    #[cfg(feature = "audit")]
    fn audit_checkpoint(&mut self) {
        assert!(
            self.now >= self.audit.last_checkpoint,
            "audit: time went backwards ({} -> {})",
            self.audit.last_checkpoint.as_u64(),
            self.now.as_u64()
        );
        self.audit.last_checkpoint = self.now;
        self.audit.checkpoints += 1;
        for vm in 0..self.vms.len() {
            let sum: i64 = self.vms[vm].vcpu_ids.iter().map(|&v| self.vcpus[v].credit).sum();
            assert_eq!(
                sum, self.audit.ledger[vm],
                "audit: credit not conserved for vm {vm} ({}): actual {sum} vs ledger {} at t={}",
                self.vms[vm].name, self.audit.ledger[vm], self.now.as_u64()
            );
        }
        self.check_invariants();
        self.events.audit_check();
    }

    /// Start recording scheduling transitions (up to `capacity` events)
    /// for timeline reconstruction.
    pub fn enable_schedule_trace(&mut self, capacity: usize) {
        self.sched_trace = TraceBuffer::new(capacity);
    }

    /// The recorded scheduling transitions.
    pub fn schedule_trace(&self) -> &TraceBuffer<SchedEvent> {
        &self.sched_trace
    }

    /// Start flight-recording: the hypervisor records the sched, credit
    /// and cosched categories of `mask`, and every VM's guest kernel
    /// records the lock, futex and barrier categories; each category
    /// retains at most `capacity` events per layer.
    pub fn enable_flight(&mut self, mask: CatMask, capacity: usize) {
        self.flight = FlightRecorder::labeled(mask, capacity, "hypervisor");
        self.flight_spec = Some((mask, capacity));
        for vm in &mut self.vms {
            vm.kernel.enable_flight(mask, capacity);
        }
    }

    /// The hypervisor-layer flight recorder (per-category drop counters,
    /// retained hypervisor events).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Start scheduler-latency telemetry: wakeup→dispatch and
    /// preemption-hold histograms in the VMM, spin-episode duration
    /// histograms in every guest kernel. Off by default; the telemetry
    /// reads only existing state transitions (no events, no RNG), so
    /// enabling it never changes simulation results — only the exported
    /// metrics gain `hv.lat.*` / `vm*.guest.spin_episode_cycles`.
    pub fn enable_sched_latency(&mut self) {
        self.lat = Some(Box::default());
        for vm in &mut self.vms {
            vm.kernel.enable_spin_episodes();
        }
    }

    /// Scheduler-latency distributions, if telemetry is enabled.
    pub fn sched_latency(&self) -> Option<&SchedLatency> {
        self.lat.as_deref()
    }

    /// VCPUs currently in the Runnable state (waiting in a runqueue).
    /// Side-effect free, for barrier-time telemetry snapshots.
    pub fn runnable_vcpus(&self) -> usize {
        self.vcpus
            .iter()
            .filter(|v| v.state == VState::Runnable)
            .count()
    }

    /// Record a cluster-layer event (fault injection, migration
    /// abort/retry, evacuation) into this host's flight stream at the
    /// current simulated time. No-op unless the recorder wants the
    /// event's category, like every other record site.
    pub fn record_cluster_event(&mut self, ev: FlightEv) {
        self.record_cluster_event_at(self.now, ev);
    }

    /// Record a cluster-layer event at an explicit timestamp — e.g. a
    /// migration commit stamped at the end of its stop-and-copy pause,
    /// which lies beyond the host's current epoch-boundary `now`. The
    /// final [`merge_streams`] sort restores global time order, so a
    /// slightly out-of-order buffer here is harmless.
    pub fn record_cluster_event_at(&mut self, t: Cycles, ev: FlightEv) {
        if self.flight.wants(ev.cat()) {
            self.flight.record(t, ev);
        }
    }

    /// Drain every layer's flight-recorder buffers into one time-ordered
    /// event stream. Guest events are rebased to global VM/VCPU indices.
    /// The merge visits layers in a fixed order (hypervisor, then VMs by
    /// index) and sorts stably by timestamp, so the result is fully
    /// deterministic.
    pub fn flight_events(&mut self) -> Vec<FlightEvent> {
        let mut streams = Vec::with_capacity(1 + self.adopted_streams.len() + self.vms.len());
        streams.push(self.flight.drain_events());
        // Streams adopted from guests extracted by live migration, in
        // extraction order (already rebased at extraction time).
        streams.append(&mut self.adopted_streams);
        for (vm_idx, vm) in self.vms.iter_mut().enumerate() {
            let map: Vec<u32> = vm.vcpu_ids.iter().map(|&v| v as u32).collect();
            let mut events = vm.kernel.flight_mut().drain_events();
            for e in &mut events {
                e.ev.rebase_guest(vm_idx as u32, &map);
            }
            streams.push(events);
        }
        merge_streams(streams)
    }

    /// Per-category flight-recorder totals summed over every layer:
    /// `(category, seen, dropped)` for each category, hypervisor plus
    /// all guest kernels.
    pub fn flight_totals(&self) -> Vec<(TraceCat, u64, u64)> {
        TraceCat::ALL
            .iter()
            .map(|&cat| {
                let mut seen = self.flight.seen(cat);
                let mut dropped = self.flight.dropped(cat);
                for vm in &self.vms {
                    seen += vm.kernel.flight().seen(cat);
                    dropped += vm.kernel.flight().dropped(cat);
                }
                (cat, seen, dropped)
            })
            .collect()
    }

    /// Register this run's counters and distributions into `reg`. Names
    /// are `hv.*` for machine-wide metrics, `vm<i>.*` for per-VM ones.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("hv.events_processed", self.events_processed);
        reg.gauge("hv.sim_secs", self.cfg.clock.to_secs(self.now));
        for (cat, seen, dropped) in self.flight_totals() {
            if seen > 0 {
                reg.inc(&format!("hv.flight.{}.seen", cat.name()), seen);
                reg.inc(&format!("hv.flight.{}.dropped", cat.name()), dropped);
            }
        }
        if let Some(lat) = &self.lat {
            // P² state cannot be re-observed, so the histograms are
            // installed wholesale. Only present when telemetry is on,
            // keeping default artifacts byte-identical.
            reg.set_hist("hv.lat.wake_to_dispatch_cycles", lat.wake_to_dispatch.clone());
            reg.set_hist("hv.lat.preempt_hold_cycles", lat.preempt_hold.clone());
        }
        for (i, vm) in self.vms.iter().enumerate() {
            let p = format!("vm{i}");
            reg.inc(&format!("{p}.dispatches"), vm.acct.dispatches.iter().sum());
            reg.inc(&format!("{p}.migrations"), vm.acct.migrations);
            reg.inc(&format!("{p}.cosched_bursts"), vm.acct.cosched_bursts);
            reg.inc(&format!("{p}.vcrd_raises"), vm.acct.vcrd_raises);
            reg.gauge(
                &format!("{p}.online_rate"),
                vm.acct.online_rate(self.now.max(Cycles(1))),
            );
            let stats = vm.kernel.stats();
            reg.inc(&format!("{p}.guest.lock_acquisitions"), stats.lock_acquisitions);
            reg.inc(
                &format!("{p}.guest.holder_preemptions"),
                stats.holder_preemptions,
            );
            reg.inc(&format!("{p}.guest.barriers_completed"), stats.barriers_completed);
            reg.inc(&format!("{p}.guest.timer_ticks"), stats.timer_ticks);
            reg.inc(
                &format!("{p}.guest.spin_kernel_cycles"),
                stats.spin_kernel_cycles.as_u64(),
            );
            for &(_, sample) in stats.wait_trace.samples() {
                reg.observe(&format!("{p}.guest.wait_cycles"), sample.wait.as_u64() as f64);
            }
            if let Some(episodes) = stats.spin_episodes() {
                reg.set_hist(&format!("{p}.guest.spin_episode_cycles"), episodes.clone());
            }
        }
    }

    #[inline]
    fn trace_sched(&mut self, vcpu: usize, pcpu: usize, kind: SchedEventKind) {
        if self.sched_trace.is_enabled() {
            let vm = self.vcpus[vcpu].vm;
            self.sched_trace.record(
                self.now,
                SchedEvent {
                    vcpu,
                    vm,
                    pcpu,
                    kind,
                },
            );
        }
        if self.flight.is_enabled() {
            self.flight_sched(vcpu, pcpu, kind);
        }
    }

    /// Flight-recorder mirror of `trace_sched`, out of line so the
    /// disabled path stays a single branch in the hot functions.
    #[cold]
    fn flight_sched(&mut self, vcpu: usize, pcpu: usize, kind: SchedEventKind) {
        let vm = self.vcpus[vcpu].vm as u32;
        let vcpu_id = vcpu as u32;
        let pcpu_id = pcpu as u32;
        let ev = match kind {
            SchedEventKind::Dispatch => FlightEv::Dispatch { vcpu: vcpu_id, vm, pcpu: pcpu_id },
            SchedEventKind::Preempt => FlightEv::Preempt { vcpu: vcpu_id, vm, pcpu: pcpu_id },
            SchedEventKind::Block => FlightEv::Block { vcpu: vcpu_id, vm, pcpu: pcpu_id },
            SchedEventKind::Wake => FlightEv::Wake {
                vcpu: vcpu_id,
                vm,
                boost: self.vcpus[vcpu].boost,
            },
            SchedEventKind::Park => FlightEv::Park { vcpu: vcpu_id, vm },
            SchedEventKind::Unpark => FlightEv::Unpark { vcpu: vcpu_id, vm },
        };
        self.flight.record(self.now, ev);
    }

    /// The configured weight proportion ω(V_i) of a VM — Equation (1).
    pub fn weight_proportion(&self, vm: usize) -> f64 {
        self.vms[vm].weight as f64 / self.total_weight as f64
    }

    /// The configured VCPU online rate of a VM — Equation (2):
    /// `|P| · ω(V_i) / |C(V_i)|`.
    pub fn configured_online_rate(&self, vm: usize) -> f64 {
        self.cfg.pcpus as f64 * self.weight_proportion(vm) / self.vms[vm].vcpu_ids.len() as f64
    }

    // ------------------------------------------------------------------
    // Live migration (cluster layer)
    // ------------------------------------------------------------------

    /// Whether a VM slot is a tombstone left behind by live migration.
    pub fn vm_evacuated(&self, vm: usize) -> bool {
        self.vms[vm].evacuated
    }

    /// Incarnation counter of a VM slot: bumped each time the tombstone
    /// is reused for a different VM (see [`Machine::enable_slot_reuse`]).
    /// Holders of a `(vm, generation)` pair can compare against this to
    /// detect that their reference now names a different VM.
    pub fn vm_generation(&self, vm: usize) -> u32 {
        self.vms[vm].generation
    }

    /// Let [`Machine::inject_vm`] recycle tombstone slots of matching
    /// VCPU count instead of appending forever. Off by default (static-
    /// population experiments keep their exact slot layout); long
    /// churned soaks enable it so slot count — and with it VCPU arrays,
    /// audit ledgers and telemetry captures — stays bounded by the peak
    /// concurrent population instead of growing with total arrivals.
    pub fn enable_slot_reuse(&mut self) {
        self.reuse_slots = true;
    }

    /// Credit-scheduler weight of a VM.
    pub fn vm_weight(&self, vm: usize) -> u32 {
        self.vms[vm].weight
    }

    /// VMs currently resident on this host (tombstones excluded).
    pub fn active_vm_count(&self) -> usize {
        self.vms.iter().filter(|v| !v.evacuated).count()
    }

    /// Cumulative spin/VCRD/online counters of one VM slot. Reading is
    /// side-effect free, so a telemetry snapshot never perturbs the
    /// simulation (or its digests).
    pub fn vm_counters(&self, vm: usize) -> VmCounters {
        let st = self.vms[vm].kernel.stats();
        let acct = &self.vms[vm].acct;
        VmCounters {
            spin: (st.spin_kernel_cycles + st.spin_barrier_cycles + st.spin_pipeline_cycles)
                .as_u64(),
            vcrd_high: acct.vcrd_high_cycles.as_u64(),
            online: acct.total_online().as_u64(),
        }
    }

    /// Telemetry counters for every VM slot, tombstones included (an
    /// evacuated slot reads as its stub kernel's zeros — the cluster
    /// registry never points at one). Captured by the worker advancing
    /// this host so the cluster's serial section is a pure array lookup.
    pub fn all_vm_counters(&self) -> Vec<VmCounters> {
        (0..self.vms.len()).map(|v| self.vm_counters(v)).collect()
    }

    /// Lift a VM off this host for live migration (the "stop" half of
    /// stop-and-copy). Must be called between run drivers — i.e. at a
    /// cluster epoch boundary, never from inside an event handler.
    ///
    /// Every VCPU is charged, descheduled and frozen as `Blocked`; the
    /// VM's slot stays behind as an evacuated tombstone (holding a
    /// zero-thread stub kernel) so VM/VCPU indices remain stable and
    /// stale in-flight events are dropped harmlessly. The guest kernel,
    /// accounting and identity move into the returned [`VmImage`].
    /// Credits do not travel: the destination's next credit assignment
    /// funds the VM afresh, which keeps both hosts' ledgers exact.
    pub fn extract_vm(&mut self, vm: usize) -> VmImage {
        assert!(!self.vms[vm].evacuated, "vm {vm} already extracted");
        for i in 0..self.vms[vm].vcpu_ids.len() {
            let v = self.vms[vm].vcpu_ids[i];
            match self.vcpus[v].state {
                VState::Running => {
                    self.charge(v);
                    let pcpu = self.vcpus[v].assigned;
                    let slot = self.vcpus[v].slot;
                    self.vms[vm].kernel.preempt(slot, self.now);
                    self.note_online_change(vm, -1);
                    self.pcpus[pcpu].running = None;
                    self.idle_mask |= 1u128 << pcpu;
                    self.trace_sched(v, pcpu, SchedEventKind::Block);
                }
                VState::Runnable => self.runq_remove(v),
                VState::Blocked => {}
            }
            let vc = &mut self.vcpus[v];
            vc.state = VState::Blocked;
            vc.blocked_since = Some(self.now);
            vc.blocked_accum = Cycles::ZERO;
            // Invalidate in-flight WorkDone events for this VCPU.
            vc.epoch += 1;
            vc.credit = 0;
            vc.boost = false;
            vc.parked = false;
            vc.spinning_since = None;
            vc.skew = Cycles::ZERO;
            // Stale latency stamps must not charge the migration pause
            // to the destination host's scheduler.
            vc.wake_at = None;
            vc.preempt_at = None;
            debug_assert_eq!(vc.runq_pos, NOT_QUEUED);
        }
        // Close the concurrency histogram and the VCRD-high span at the
        // departure time, then force the VMM view back to LOW (the
        // destination host starts from a LOW view; the guest's
        // Monitoring Module will re-raise if still warranted).
        self.note_online_change(vm, 0);
        if self.vms[vm].vcrd == Vcrd::High {
            let since = self.vms[vm].vcrd_high_since;
            self.vms[vm].acct.vcrd_high_cycles += self.now - since;
            self.vms[vm].vcrd = Vcrd::Low;
        }
        // Invalidate in-flight VcrdTimer events.
        self.vms[vm].vcrd_epoch += 1;
        self.vms[vm].last_cosched = None;
        self.total_weight -= self.vms[vm].weight as u64;
        #[cfg(feature = "audit")]
        {
            // Credits were zeroed above; the shadow ledger follows.
            self.audit.ledger[vm] = 0;
        }
        // The guest's flight history must survive the kernel swap:
        // rebase it to this host's global indices now and merge it into
        // flight_events() later.
        if self.vms[vm].kernel.flight().is_enabled() {
            let map: Vec<u32> = self.vms[vm].vcpu_ids.iter().map(|&v| v as u32).collect();
            let mut events = self.vms[vm].kernel.flight_mut().drain_events();
            for e in &mut events {
                e.ev.rebase_guest(vm as u32, &map);
            }
            if !events.is_empty() {
                self.adopted_streams.push(events);
            }
        }
        let vcpu_count = self.vms[vm].vcpu_ids.len();
        // The tombstone's kernel: zero threads, so every VCPU reports
        // not-runnable forever and stale wakes are dropped.
        struct EvacuatedProgram;
        impl asman_workloads::Program for EvacuatedProgram {
            fn name(&self) -> &str {
                "evacuated"
            }
            fn thread_count(&self) -> usize {
                0
            }
            fn next_op(&mut self, _tid: usize) -> asman_workloads::Op {
                asman_workloads::Op::Done
            }
        }
        let stub = GuestKernel::new(
            Box::new(EvacuatedProgram),
            vcpu_count,
            asman_guest::GuestCosts::default(),
            Box::new(asman_guest::NullObserver),
        );
        let kernel = std::mem::replace(&mut self.vms[vm].kernel, stub);
        let acct = std::mem::replace(&mut self.vms[vm].acct, VmAccounting::new(vcpu_count));
        let image = VmImage {
            name: self.vms[vm].name.clone(),
            weight: self.vms[vm].weight,
            cap: self.vms[vm].cap,
            concurrent_hint: self.vms[vm].concurrent_hint,
            finite: self.vms[vm].finite,
            kernel,
            acct,
        };
        let v = &mut self.vms[vm];
        v.evacuated = true;
        v.concurrent_hint = false;
        // A tombstone must not hold run_to_completion hostage.
        v.finite = false;
        image
    }

    /// Resume a migrated VM on this host (the "copy done" half of
    /// stop-and-copy). `resume_at` is when the guest becomes visible
    /// again — the stop-and-copy pause between extraction and
    /// `resume_at` is guest-visible dead time: runnable VCPUs only wake
    /// then, and sleep deadlines that expired during the pause fire
    /// late. Must be called between run drivers, with
    /// `resume_at >= now`. Returns the VM's index on this host.
    pub fn inject_vm(&mut self, image: VmImage, resume_at: Cycles) -> usize {
        let vcpu_count = image.vcpus();
        assert!(
            vcpu_count <= self.cfg.pcpus,
            "a VM cannot have more VCPUs than the destination has PCPUs"
        );
        assert!(vcpu_count > 0, "cannot inject a VM with no VCPUs");
        if self.reuse_slots {
            if let Some(slot) = self.reusable_tombstone(vcpu_count) {
                return self.inject_into_tombstone(slot, image, resume_at);
            }
        }
        let vm_idx = self.vms.len();
        let resume = resume_at.max(self.now);
        let mut vcpu_ids = Vec::with_capacity(vcpu_count);
        for slot in 0..vcpu_count {
            let id = self.vcpus.len();
            vcpu_ids.push(id);
            self.vcpus.push(Vcpu {
                vm: vm_idx,
                slot,
                state: VState::Blocked,
                assigned: slot % self.cfg.pcpus,
                credit: 0,
                boost: false,
                epoch: 0,
                last_charge: self.now,
                parked: false,
                // First dispatch on the new host pays the warm-up
                // penalty: the working set did not travel.
                cold: true,
                last_ran: None,
                spinning_since: None,
                skew: Cycles::ZERO,
                blocked_since: Some(self.now),
                blocked_accum: Cycles::ZERO,
                wake_at: None,
                preempt_at: None,
                runq_pos: NOT_QUEUED,
            });
        }
        self.total_weight += image.weight as u64;
        #[cfg(feature = "audit")]
        self.audit.ledger.push(0);
        // Re-arm what the source host's event queue held in flight:
        // wakes for currently runnable VCPUs (delivered when the pause
        // ends) and one timer per sleeping thread (late if the deadline
        // fell inside the pause — migration dead time is guest-visible).
        for (slot, &vcpu) in vcpu_ids.iter().enumerate() {
            if image.kernel.vcpu_runnable(slot) {
                self.events.schedule(resume, Ev::Wake { vcpu: vcpu as u32, gen: 0 });
            }
        }
        for (thread, until) in image.kernel.sleeping_threads() {
            self.events.schedule(
                until.max(resume),
                Ev::SleepTimer {
                    vm: vm_idx as u32,
                    thread: thread as u32,
                    gen: 0,
                },
            );
        }
        self.vms.push(Vm {
            name: image.name,
            weight: image.weight,
            cap: image.cap,
            concurrent_hint: image.concurrent_hint,
            finite: image.finite,
            kernel: image.kernel,
            vcpu_ids,
            vcrd: Vcrd::Low,
            vcrd_epoch: 0,
            vcrd_high_since: self.now,
            last_cosched: None,
            acct: image.acct,
            online_count: 0,
            co_last: self.now,
            evacuated: false,
            generation: 0,
        });
        self.arm_late_guest_telemetry(vm_idx);
        vm_idx
    }

    /// Lowest-index tombstone slot whose VCPU count matches, if any.
    fn reusable_tombstone(&self, vcpus: usize) -> Option<usize> {
        self.vms
            .iter()
            .position(|v| v.evacuated && v.vcpu_ids.len() == vcpus)
    }

    /// Resume `image` in a reused tombstone slot: the slot-recycling arm
    /// of [`Machine::inject_vm`]. The slot's generation is bumped first,
    /// so every wake or sleep timer still in flight for the previous
    /// occupant dies at delivery — a wake for VM A must never start
    /// VM B. VCPU scheduler state is reset to exactly what a freshly
    /// appended slot would get (home PCPU by slot index, cold caches, no
    /// latency stamps or spin residue); `epoch` and `vcrd_epoch` stay
    /// monotone so events from older incarnations remain dead.
    fn inject_into_tombstone(&mut self, vm: usize, image: VmImage, resume_at: Cycles) -> usize {
        debug_assert!(self.vms[vm].evacuated, "reuse target must be a tombstone");
        let resume = resume_at.max(self.now);
        self.vms[vm].generation = self.vms[vm].generation.wrapping_add(1);
        let gen = self.vms[vm].generation;
        for i in 0..self.vms[vm].vcpu_ids.len() {
            let v = self.vms[vm].vcpu_ids[i];
            let slot = self.vcpus[v].slot;
            let vc = &mut self.vcpus[v];
            debug_assert_eq!(vc.state, VState::Blocked);
            debug_assert_eq!(vc.runq_pos, NOT_QUEUED);
            vc.assigned = slot % self.cfg.pcpus;
            vc.credit = 0;
            vc.boost = false;
            vc.parked = false;
            // First dispatch pays warm-up: the working set did not
            // travel, and the previous occupant's footprint is gone.
            vc.cold = true;
            vc.last_ran = None;
            vc.spinning_since = None;
            vc.skew = Cycles::ZERO;
            vc.last_charge = self.now;
            vc.blocked_since = Some(self.now);
            vc.blocked_accum = Cycles::ZERO;
            // Stale stamps from the previous occupant must not be
            // consumed by this VM's first dispatches.
            vc.wake_at = None;
            vc.preempt_at = None;
        }
        self.total_weight += image.weight as u64;
        #[cfg(feature = "audit")]
        {
            self.audit.ledger[vm] = 0;
        }
        for (slot, &vcpu) in self.vms[vm].vcpu_ids.iter().enumerate() {
            if image.kernel.vcpu_runnable(slot) {
                self.events.schedule(resume, Ev::Wake { vcpu: vcpu as u32, gen });
            }
        }
        for (thread, until) in image.kernel.sleeping_threads() {
            self.events.schedule(
                until.max(resume),
                Ev::SleepTimer { vm: vm as u32, thread: thread as u32, gen },
            );
        }
        let v = &mut self.vms[vm];
        debug_assert_eq!(v.online_count, 0, "a tombstone cannot have online VCPUs");
        v.name = image.name;
        v.weight = image.weight;
        v.cap = image.cap;
        v.concurrent_hint = image.concurrent_hint;
        v.finite = image.finite;
        v.kernel = image.kernel;
        v.acct = image.acct;
        // The VMM view restarts LOW, exactly as on an appended slot.
        v.vcrd = Vcrd::Low;
        v.vcrd_high_since = self.now;
        v.last_cosched = None;
        v.co_last = self.now;
        v.evacuated = false;
        self.arm_late_guest_telemetry(vm);
        vm
    }

    /// Arm flight recording and spin-episode telemetry on a VM injected
    /// or created after the machine-wide enables ran. Guarded so a
    /// travelling kernel that already carries a recorder or histogram
    /// keeps it — late arming must fill gaps, never clobber history.
    fn arm_late_guest_telemetry(&mut self, vm: usize) {
        if let Some((mask, capacity)) = self.flight_spec {
            if !self.vms[vm].kernel.flight().is_enabled() {
                self.vms[vm].kernel.enable_flight(mask, capacity);
            }
        }
        if self.lat.is_some() && self.vms[vm].kernel.stats().spin_episodes.is_none() {
            self.vms[vm].kernel.enable_spin_episodes();
        }
    }

    /// Roll back an aborted migration: re-inject `image` into the
    /// tombstone slot it was extracted from on *this* host. The inverse
    /// of [`Machine::extract_vm`], with [`Machine::inject_vm`]'s resume
    /// semantics: runnable VCPUs wake at `resume_at` (the abort
    /// penalty's end) and sleep deadlines that expired during the
    /// penalty fire late. Unlike injection the working set never left
    /// this host, so no cold-dispatch penalty is charged, and wake or
    /// sleep events still in flight from before the extraction deliver
    /// normally — the guest never actually stopped being resident. Must
    /// be called between run drivers, like extract/inject.
    pub fn undo_extract_vm(&mut self, vm: usize, image: VmImage, resume_at: Cycles) {
        assert!(
            self.vms[vm].evacuated,
            "undo_extract_vm: vm {vm} is not a tombstone"
        );
        assert_eq!(
            image.vcpus(),
            self.vms[vm].vcpu_ids.len(),
            "undo_extract_vm: image shape does not match the tombstone"
        );
        let resume = resume_at.max(self.now);
        let weight = image.weight as u64;
        // The generation is NOT bumped on a rollback: the slot was never
        // reused, so pre-extraction wakes and timers stay valid — the
        // guest never actually stopped being resident.
        let gen = self.vms[vm].generation;
        // Re-arm what inject_vm would have armed on a destination:
        // wakes for runnable VCPUs at the penalty's end, one timer per
        // sleeping thread.
        for (slot, &vcpu) in self.vms[vm].vcpu_ids.iter().enumerate() {
            if image.kernel.vcpu_runnable(slot) {
                self.events.schedule(resume, Ev::Wake { vcpu: vcpu as u32, gen });
            }
        }
        for (thread, until) in image.kernel.sleeping_threads() {
            self.events.schedule(
                until.max(resume),
                Ev::SleepTimer {
                    vm: vm as u32,
                    thread: thread as u32,
                    gen,
                },
            );
        }
        let v = &mut self.vms[vm];
        debug_assert_eq!(v.online_count, 0, "a tombstone cannot have online VCPUs");
        v.name = image.name;
        v.weight = image.weight;
        v.cap = image.cap;
        v.concurrent_hint = image.concurrent_hint;
        v.finite = image.finite;
        v.kernel = image.kernel;
        v.acct = image.acct;
        // The VMM view restarts LOW, exactly as on a destination host;
        // vcrd_epoch stays bumped so pre-extraction timers stay dead.
        v.vcrd = Vcrd::Low;
        v.vcrd_high_since = self.now;
        v.last_cosched = None;
        v.co_last = self.now;
        v.evacuated = false;
        self.total_weight += weight;
        // Credits were zeroed at extraction and stay zero (the shadow
        // ledger already agrees); the next assignment funds the VM.
    }

    /// Boot a brand-new VM on this host at an epoch boundary. The spec
    /// is materialized into a fresh guest kernel and admitted through
    /// the [`Machine::inject_vm`] path (reusing a tombstone slot when
    /// [`Machine::enable_slot_reuse`] is armed), so a created VM behaves
    /// exactly like a migrated-in VM with zero history: VCPUs wake at
    /// `start_at`, first dispatches pay the cold-cache penalty, and the
    /// next credit assignment funds it. Must be called between run
    /// drivers. Returns the VM's slot index.
    pub fn create_vm(&mut self, spec: VmSpec, start_at: Cycles) -> usize {
        let finite = spec.program.finite();
        let vcpus = spec.vcpus;
        let kernel = GuestKernel::new(spec.program, vcpus, spec.costs, spec.observer);
        let image = VmImage {
            name: spec.name,
            weight: spec.weight,
            cap: spec.cap,
            concurrent_hint: spec.concurrent_hint,
            finite,
            kernel,
            acct: VmAccounting::new(vcpus),
        };
        self.inject_vm(image, start_at)
    }

    /// Permanently remove a VM from the simulation at an epoch boundary:
    /// the "departure" half of cluster churn. The VM is extracted like a
    /// migration source — VCPUs frozen, accounting closed exactly, slot
    /// left as a reusable tombstone, flight history adopted into this
    /// host's stream — but instead of travelling, the image is finalized
    /// into a [`VmRetirement`] and dropped. Must be called between run
    /// drivers.
    pub fn destroy_vm(&mut self, vm: usize) -> VmRetirement {
        let image = self.extract_vm(vm);
        let counters = image.counters();
        VmRetirement {
            vcpus: image.vcpus(),
            counters,
            useful_cycles: image.kernel.stats().useful_cycles.as_u64(),
            finished: image.kernel.is_finished(),
            name: image.name,
        }
    }

    // ------------------------------------------------------------------
    // Run drivers
    // ------------------------------------------------------------------

    /// Process events until `deadline`, a stop predicate fires, or the
    /// event queue drains. Returns `true` if the predicate fired.
    pub fn run_while<F: FnMut(&Self) -> bool>(
        &mut self,
        deadline: Cycles,
        mut keep_going: F,
    ) -> bool {
        let wall_start = std::time::Instant::now();
        let fired = loop {
            if !keep_going(self) {
                self.settle();
                break true;
            }
            match self.events.pop_before(deadline) {
                Some((t, _, ev)) => {
                    debug_assert!(t >= self.now, "time went backwards");
                    self.now = t;
                    self.events_processed += 1;
                    self.handle(ev);
                }
                None => {
                    // Pending events (if any) all lie beyond the deadline.
                    if !self.events.is_empty() {
                        self.now = deadline;
                    }
                    self.settle();
                    break false;
                }
            }
        };
        self.run_wall += wall_start.elapsed();
        fired
    }

    /// Run until `deadline` unconditionally.
    pub fn run_until(&mut self, deadline: Cycles) {
        self.run_while(deadline, |_| true);
    }

    /// Run until every finite VM's program completed (or `deadline`).
    /// Returns `true` on completion.
    pub fn run_to_completion(&mut self, deadline: Cycles) -> bool {
        self.run_while(deadline, |m| {
            m.vms.iter().any(|vm| vm.finite && !vm.kernel.is_finished())
        })
    }

    /// Run until every VM has completed at least `rounds` VM-level rounds
    /// (or `deadline`). Returns `true` on completion.
    pub fn run_until_rounds(&mut self, rounds: usize, deadline: Cycles) -> bool {
        self.run_while(deadline, |m| {
            m.vms
                .iter()
                .any(|vm| vm.kernel.stats().vm_rounds_completed() < rounds)
        })
    }

    /// Charge all running VCPUs up to `now` so accounting reads are exact.
    fn settle(&mut self) {
        for p in 0..self.pcpus.len() {
            if let Some(v) = self.pcpus[p].running {
                self.charge(v);
            }
        }
        for vm in 0..self.vms.len() {
            self.note_online_change(vm, 0);
            if self.vms[vm].vcrd == Vcrd::High {
                let since = self.vms[vm].vcrd_high_since;
                self.vms[vm].acct.vcrd_high_cycles += self.now - since;
                self.vms[vm].vcrd_high_since = self.now;
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Tick { pcpu } => {
                #[cfg(feature = "audit")]
                self.audit_checkpoint();
                let pcpu = pcpu as usize;
                if let Some(v) = self.pcpus[pcpu].running {
                    // BOOST lasts until the first accounting tick the
                    // VCPU survives (Xen semantics).
                    self.vcpus[v].boost = false;
                    self.charge(v);
                    // Out-of-VM VCRD inference: sustained busy-waiting is
                    // visible to the VMM via Pause-Loop-Exit hardware.
                    if self.cfg.policy == CoschedPolicy::OutOfVm {
                        if let Some(since) = self.vcpus[v].spinning_since {
                            // PLE window: only sustained spinning (about
                            // the over-threshold scale) raises the VCRD;
                            // short benign spins must not trigger
                            // coscheduling churn.
                            if self.now - since > Cycles(1 << 21) {
                                self.vcpus[v].spinning_since = Some(self.now);
                                let vm = self.vcpus[v].vm;
                                self.handle_vcrd(
                                    vm,
                                    VcrdUpdate {
                                        vcrd: Vcrd::High,
                                        expire_in: Some(self.cfg.assign_interval()),
                                    },
                                );
                            }
                        }
                    }
                    self.enforce_cap(v);
                }
                if self.cfg.policy == CoschedPolicy::Relaxed && pcpu == 0 {
                    self.relaxed_skew_pass();
                }
                self.schedule_pcpu(pcpu);
                self.post_schedule_cosched(pcpu);
                self.events
                    .schedule(self.now + self.cfg.slot(), Ev::Tick { pcpu: pcpu as u32 });
            }
            Ev::Assign => {
                #[cfg(feature = "audit")]
                self.audit_checkpoint();
                self.assign_credit();
                // Parked NWC VCPUs that regained credit are *not* tickled
                // here: as in Xen, they are picked up lazily at each
                // PCPU's next (staggered) accounting tick. This is what
                // desynchronizes sibling VCPUs' duty cycles at low online
                // rates — the phenomenon the paper measures.
                self.events
                    .schedule(self.now + self.cfg.assign_interval(), Ev::Assign);
            }
            Ev::Reschedule { pcpu } => {
                let pcpu = pcpu as usize;
                self.schedule_pcpu(pcpu);
                self.post_schedule_cosched(pcpu);
            }
            Ev::WorkDone { vcpu, epoch } => {
                let vcpu = vcpu as usize;
                if self.vcpus[vcpu].epoch != epoch || self.vcpus[vcpu].state != VState::Running {
                    return;
                }
                self.charge(vcpu);
                if self.enforce_cap(vcpu) {
                    return;
                }
                let vm = self.vcpus[vcpu].vm;
                let slot = self.vcpus[vcpu].slot;
                let mut fx = std::mem::take(&mut self.scratch_fx);
                let work = self.vms[vm].kernel.work_complete(slot, self.now, &mut fx);
                let still_running = self.install_work(vcpu, work);
                self.apply_effects(vm, &mut fx);
                self.scratch_fx = fx;
                if still_running
                    && matches!(
                        self.cfg.policy,
                        CoschedPolicy::Adaptive | CoschedPolicy::OutOfVm
                    )
                    && self.cosched_active(vm)
                {
                    // Segment boundaries are scheduling events too
                    // (Algorithm 4): ASMan keeps its gang together for
                    // the whole estimated lasting time. The static
                    // coscheduler (VEE'09) re-gangs only at scheduler
                    // events proper, or it starves everything else.
                    self.maybe_cosched(vm);
                }
            }
            Ev::SleepTimer { vm, thread, gen } => {
                let (vm, thread) = (vm as usize, thread as usize);
                if self.vms[vm].evacuated || gen != self.vms[vm].generation {
                    // The VM migrated away (or its slot has since been
                    // reused by a different VM); the stale timer must
                    // not be delivered. The destination host re-armed
                    // the sleep from the kernel's thread state at
                    // injection time.
                    return;
                }
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.vms[vm].kernel.sleep_timer(thread, self.now, &mut fx);
                self.apply_effects(vm, &mut fx);
                self.scratch_fx = fx;
            }
            Ev::VcrdTimer { vm, epoch } => {
                let vm = vm as usize;
                if self.vms[vm].vcrd_epoch != epoch || self.vms[vm].evacuated {
                    return;
                }
                if self.cfg.policy == CoschedPolicy::OutOfVm {
                    // No guest-side Monitoring Module to consult: the
                    // hypervisor lowers the VCRD itself.
                    self.handle_vcrd(
                        vm,
                        VcrdUpdate {
                            vcrd: Vcrd::Low,
                            expire_in: None,
                        },
                    );
                    return;
                }
                let mut fx = std::mem::take(&mut self.scratch_fx);
                self.vms[vm].kernel.vcrd_timer(self.now, &mut fx);
                self.apply_effects(vm, &mut fx);
                self.scratch_fx = fx;
            }
            Ev::Ipi { vcpu } => {
                let vcpu = vcpu as usize;
                if self.vcpus[vcpu].state == VState::Runnable {
                    let p = self.vcpus[vcpu].assigned;
                    self.schedule_pcpu(p);
                }
            }
            Ev::Wake { vcpu, gen } => {
                let vcpu = vcpu as usize;
                if gen != self.vms[self.vcpus[vcpu].vm].generation {
                    // Armed for a previous incarnation of a since-reused
                    // slot: a wake for VM A must never start VM B.
                    return;
                }
                self.deliver_wake(vcpu);
            }
        }
    }

    // ------------------------------------------------------------------
    // Credit accounting
    // ------------------------------------------------------------------

    /// Distribute one interval's credit: `Cred_total = |P| × Cred_unit ×
    /// K` split by weight, equally among each VM's VCPUs (Algorithm 3).
    fn assign_credit(&mut self) {
        if self.total_weight == 0 {
            // Every VM migrated away; nothing to fund.
            return;
        }
        let interval = self.cfg.assign_interval();
        let total = self.cfg.slot() * self.cfg.pcpus as u64 * self.cfg.assign_interval_slots as u64;
        for vm in 0..self.vms.len() {
            if self.vms[vm].evacuated {
                continue;
            }
            let inc = total.mul_ratio(self.vms[vm].weight as u64, self.total_weight);
            let per_vcpu = (inc / self.vms[vm].vcpu_ids.len() as u64).as_u64() as i64;
            let cap = per_vcpu.saturating_mul(self.cfg.credit_cap_intervals as i64);
            // The domain's income is divided among its VCPUs according to
            // their *active* (non-blocked) time this interval, mirroring
            // the Credit scheduler's active-set accounting. The division
            // preserves the domain total, so a VCPU that busy-waits while
            // its siblings block soaks up the whole domain's credit — the
            // positive feedback that lets sibling duty cycles drift apart
            // under asynchronous scheduling.
            // The oracle allocates a fresh buffer every interval rather
            // than reusing scratch — deliberately cache-free.
            let mut actives = if Q::NAIVE {
                Vec::new()
            } else {
                std::mem::take(&mut self.scratch_actives)
            };
            actives.clear();
            for i in 0..self.vms[vm].vcpu_ids.len() {
                let v = self.vms[vm].vcpu_ids[i];
                let mut blocked = self.vcpus[v].blocked_accum;
                if let Some(since) = self.vcpus[v].blocked_since {
                    blocked += self.now.saturating_sub(since);
                    self.vcpus[v].blocked_since = Some(self.now);
                }
                self.vcpus[v].blocked_accum = Cycles::ZERO;
                actives.push(interval.saturating_sub(blocked.min(interval)).as_u64());
            }
            let active_sum: u128 = actives.iter().map(|&a| a as u128).sum();
            for (i, &active) in actives.iter().enumerate() {
                let v = self.vms[vm].vcpu_ids[i];
                let income = (inc.as_u64() as u128 * active as u128)
                    .checked_div(active_sum)
                    .unwrap_or(0) as i64;
                let c = &mut self.vcpus[v].credit;
                #[cfg(feature = "audit")]
                let credit_before = *c;
                *c = (*c + income).min(cap);
                #[cfg(feature = "audit")]
                {
                    // Record the *clipped* delta: the cap is part of the
                    // semantics, not an error.
                    let delta = self.vcpus[v].credit - credit_before;
                    self.audit.ledger[vm] += delta;
                }
                if self.flight.wants(TraceCat::Credit) {
                    self.flight.record(
                        self.now,
                        FlightEv::CreditAssign {
                            vcpu: v as u32,
                            vm: vm as u32,
                            income,
                            credit: self.vcpus[v].credit,
                        },
                    );
                }
                if self.vms[vm].cap == CapMode::NonWorkConserving {
                    // Park/unpark decisions happen here and only here
                    // (Xen's CSCHED_FLAG_VCPU_PARKED semantics).
                    let was = self.vcpus[v].parked;
                    let park = self.vcpus[v].credit <= 0;
                    self.vcpus[v].parked = park;
                    if was != park {
                        let p = self.vcpus[v].assigned;
                        self.trace_sched(
                            v,
                            p,
                            if park {
                                SchedEventKind::Park
                            } else {
                                SchedEventKind::Unpark
                            },
                        );
                    }
                }
            }
            if !Q::NAIVE {
                self.scratch_actives = actives;
            }
        }
    }

    /// Accumulate the concurrency histogram and adjust a VM's online
    /// VCPU count by `delta` (+1 on dispatch, −1 on preempt/block).
    fn note_online_change(&mut self, vm: usize, delta: i64) {
        let v = &mut self.vms[vm];
        let el = self.now.saturating_sub(v.co_last);
        v.acct.co_online[v.online_count] += el;
        if v.vcrd == Vcrd::High {
            v.acct.co_online_high[v.online_count] += el;
        }
        v.co_last = self.now;
        v.online_count = (v.online_count as i64 + delta) as usize;
    }

    /// Park a capped VCPU that has overdrawn its credit beyond one
    /// timeslice-worth of slack (Xen's cap enforcement bound). Returns
    /// `true` if the VCPU was preempted as a result. Unparking happens
    /// only at accounting events, once credit is positive again.
    fn enforce_cap(&mut self, vcpu: usize) -> bool {
        let v = &self.vcpus[vcpu];
        if self.vms[v.vm].cap != CapMode::NonWorkConserving || v.parked {
            return false;
        }
        let slack = (self.cfg.slot().as_u64() / 4) as i64;
        if v.credit >= -slack {
            return false;
        }
        self.vcpus[vcpu].parked = true;
        self.trace_sched(vcpu, self.vcpus[vcpu].assigned, SchedEventKind::Park);
        if self.vcpus[vcpu].state == VState::Running {
            let pcpu = self.vcpus[vcpu].assigned;
            self.preempt_to_runq(vcpu);
            self.schedule_pcpu(pcpu);
            return true;
        }
        false
    }

    /// Burn credit and account online time for a running VCPU.
    fn charge(&mut self, vcpu: usize) {
        let el = self.now.saturating_sub(self.vcpus[vcpu].last_charge);
        self.vcpus[vcpu].last_charge = self.now;
        if el.is_zero() {
            return;
        }
        let vm = self.vcpus[vcpu].vm;
        #[cfg(feature = "audit")]
        {
            // The shadow ledger records the burn the semantics demand;
            // the actual burn below additionally applies the injected
            // skew (zero unless a mutation test armed it), so any
            // off-by-N in the hot path shows up as ledger drift at the
            // next checkpoint.
            self.audit.ledger[vm] -= el.as_u64() as i64;
        }
        #[cfg(feature = "audit")]
        let burn = el.as_u64() as i64 + self.audit.skew;
        #[cfg(not(feature = "audit"))]
        let burn = el.as_u64() as i64;
        self.vcpus[vcpu].credit -= burn;
        let slot = self.vcpus[vcpu].slot;
        self.vms[vm].acct.vcpu_online[slot] += el;
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// The socket a PCPU belongs to (PCPUs split evenly).
    fn socket_of(&self, pcpu: usize) -> usize {
        pcpu * self.cfg.sockets.max(1) / self.cfg.pcpus
    }

    /// Enqueue a runnable VCPU at the tail of `pcpu`'s runqueue,
    /// maintaining the position index and the queued mask.
    #[inline]
    fn runq_push(&mut self, pcpu: usize, vcpu: usize) {
        debug_assert_eq!(self.vcpus[vcpu].runq_pos, NOT_QUEUED);
        self.vcpus[vcpu].runq_pos = self.pcpus[pcpu].runq.len();
        self.pcpus[pcpu].runq.push(vcpu);
        self.queued_mask |= 1u128 << pcpu;
    }

    /// Remove a queued VCPU from its runqueue in O(1) via the position
    /// index (swap-remove, fixing the displaced tail entry's index).
    /// The oracle ignores the index and finds the entry by scanning the
    /// queue; the removal itself stays a swap-remove in both modes
    /// because the resulting queue order is observable (it feeds the
    /// candidate scans) and therefore part of the semantics under test.
    #[inline]
    fn runq_remove(&mut self, vcpu: usize) {
        let pcpu = self.vcpus[vcpu].assigned;
        let pos = if Q::NAIVE {
            self.pcpus[pcpu]
                .runq
                .iter()
                .position(|&q| q == vcpu)
                .expect("runnable vcpu missing from its runqueue")
        } else {
            self.vcpus[vcpu].runq_pos
        };
        debug_assert_eq!(self.pcpus[pcpu].runq.get(pos), Some(&vcpu));
        self.pcpus[pcpu].runq.swap_remove(pos);
        self.vcpus[vcpu].runq_pos = NOT_QUEUED;
        if let Some(&moved) = self.pcpus[pcpu].runq.get(pos) {
            self.vcpus[moved].runq_pos = pos;
        }
        if self.pcpus[pcpu].runq.is_empty() {
            self.queued_mask &= !(1u128 << pcpu);
        }
    }

    /// The lowest-numbered idle PCPU, if any (same choice the old
    /// linear scan made, found via the idle mask — or, in the oracle,
    /// by actually performing that linear scan over the PCPU table).
    #[inline]
    fn first_idle_pcpu(&self) -> Option<usize> {
        if Q::NAIVE {
            return self.pcpus.iter().position(|p| p.running.is_none());
        }
        if self.idle_mask == 0 {
            None
        } else {
            Some(self.idle_mask.trailing_zeros() as usize)
        }
    }

    /// Priority class: BOOST > UNDER (credit > 0) > OVER.
    #[inline]
    fn prio(&self, vcpu: usize) -> (u8, i64) {
        let v = &self.vcpus[vcpu];
        #[cfg(feature = "audit")]
        let boosted = v.boost && !self.audit.boost_skip;
        #[cfg(not(feature = "audit"))]
        let boosted = v.boost;
        let class = if boosted {
            2
        } else if v.credit > 0 {
            1
        } else {
            0
        };
        (class, v.credit)
    }

    /// Whether a runnable VCPU may be given a PCPU right now. Cap
    /// enforcement is coarse, exactly as in Xen: a capped VCPU is parked
    /// or unparked only at 30 ms accounting events, so it can overshoot
    /// its share by a whole accounting period and then pay it back over
    /// several periods. This quantization is what lets sibling VCPUs'
    /// duty cycles diverge by multiples of 30 ms under the plain Credit
    /// scheduler.
    #[inline]
    fn eligible(&self, vcpu: usize) -> bool {
        !self.vcpus[vcpu].parked
    }

    /// The Credit-scheduler decision for one PCPU (with the paper's
    /// Algorithm 4 IPI coscheduling layered on top via `install`'s
    /// cosched trigger).
    fn schedule_pcpu(&mut self, pcpu: usize) {
        // Charge the incumbent so priority comparison uses fresh credit.
        if let Some(cur) = self.pcpus[pcpu].running {
            self.charge(cur);
        }
        loop {
            let cur = self.pcpus[pcpu].running;
            // Best eligible local candidate. Priorities are computed once
            // per inspected VCPU and carried alongside the candidate.
            let mut cand: Option<(usize, (u8, i64))> = None;
            for &v in &self.pcpus[pcpu].runq {
                if self.eligible(v) {
                    let pv = self.prio(v);
                    if cand.is_none_or(|(_, pc)| pv > pc) {
                        cand = Some((v, pv));
                    }
                }
            }
            // Load balancing: steal if the local best is OVER-class or
            // absent (Credit-scheduler idle/priority stealing). Only
            // PCPUs with non-empty runqueues are visited, in index order
            // — the same order the full scan used. The oracle ignores
            // the cached queued mask and recomputes the set of
            // non-empty runqueues from the PCPU table.
            let local_class = cand.map(|(_, pc)| pc.0).unwrap_or(0);
            if local_class < 1 {
                let remote_mask = if Q::NAIVE {
                    self.pcpus
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| !p.runq.is_empty())
                        .fold(0u128, |m, (i, _)| m | (1u128 << i))
                        & !(1u128 << pcpu)
                } else {
                    self.queued_mask & !(1u128 << pcpu)
                };
                let mut best_remote: Option<(usize, (u8, i64))> = None;
                let mut mask = remote_mask;
                while mask != 0 {
                    let p = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    for &v in &self.pcpus[p].runq {
                        if self.eligible(v) {
                            let pv = self.prio(v);
                            if pv.0 >= 1 && best_remote.is_none_or(|(_, pb)| pv > pb) {
                                best_remote = Some((v, pv));
                            }
                        }
                    }
                }
                // A remote UNDER/BOOST candidate beats a local OVER one;
                // when the PCPU would otherwise idle, any eligible remote
                // OVER candidate is also worth stealing (work conserving).
                if best_remote.is_none() && cand.is_none() {
                    let mut mask = remote_mask;
                    while mask != 0 {
                        let p = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        for &v in &self.pcpus[p].runq {
                            if self.eligible(v) {
                                let pv = self.prio(v);
                                if best_remote.is_none_or(|(_, pb)| pv > pb) {
                                    best_remote = Some((v, pv));
                                }
                            }
                        }
                    }
                }
                if let Some((r, pr)) = best_remote {
                    if cand.is_none_or(|(_, pc)| pr > pc) {
                        cand = Some((r, pr));
                    }
                }
            }
            let Some((next, next_prio)) = cand else {
                // Nothing eligible anywhere. An ineligible incumbent (a
                // capped VCPU whose credit ran out) must still be parked.
                if let Some(c) = cur {
                    if !self.eligible(c) {
                        self.preempt_to_runq(c);
                    }
                }
                return;
            };
            let mut demoted = None;
            match cur {
                Some(c) if self.eligible(c) && self.prio(c) >= next_prio => {
                    return; // incumbent stays
                }
                Some(c) => {
                    self.preempt_to_runq(c);
                    demoted = Some(c);
                }
                None => {}
            }
            // Dequeue `next` from wherever it is homed and run it here.
            let home = self.vcpus[next].assigned;
            self.runq_remove(next);
            if home != pcpu {
                self.vms[self.vcpus[next].vm].acct.migrations += 1;
                if self.flight.wants(TraceCat::Sched) {
                    self.flight.record(
                        self.now,
                        FlightEv::Steal {
                            vcpu: next as u32,
                            vm: self.vcpus[next].vm as u32,
                            from: home as u32,
                            to: pcpu as u32,
                        },
                    );
                }
            }
            if self.dispatch(next, pcpu) {
                // Xen tickles an idler when a preemption leaves a
                // runnable VCPU behind, so the demoted VCPU migrates
                // immediately instead of stranding until the next tick.
                if let Some(c) = demoted {
                    if self.vcpus[c].state == VState::Runnable && self.eligible(c) {
                        if let Some(idle) = self.first_idle_pcpu() {
                            self.schedule_pcpu(idle);
                        }
                    }
                }
                return;
            }
            // Guest had nothing to run (raced a block): the VCPU blocked;
            // loop to find another candidate.
        }
    }

    /// Preempt a running VCPU back to its PCPU's runqueue.
    fn preempt_to_runq(&mut self, vcpu: usize) {
        debug_assert_eq!(self.vcpus[vcpu].state, VState::Running);
        self.charge(vcpu);
        let pcpu = self.vcpus[vcpu].assigned;
        debug_assert_eq!(self.pcpus[pcpu].running, Some(vcpu));
        let vm = self.vcpus[vcpu].vm;
        let slot = self.vcpus[vcpu].slot;
        self.vms[vm].kernel.preempt(slot, self.now);
        self.note_online_change(vm, -1);
        self.vcpus[vcpu].epoch += 1;
        self.vcpus[vcpu].cold = true;
        self.vcpus[vcpu].state = VState::Runnable;
        if self.lat.is_some() {
            self.vcpus[vcpu].preempt_at = Some(self.now);
        }
        self.trace_sched(vcpu, pcpu, SchedEventKind::Preempt);
        self.pcpus[pcpu].running = None;
        self.idle_mask |= 1u128 << pcpu;
        self.runq_push(pcpu, vcpu);
    }

    /// Give `vcpu` the PCPU. Returns `false` if the guest immediately
    /// blocked (nothing runnable).
    fn dispatch(&mut self, vcpu: usize, pcpu: usize) -> bool {
        debug_assert_eq!(self.vcpus[vcpu].state, VState::Runnable);
        debug_assert!(self.pcpus[pcpu].running.is_none());
        if let Some(lat) = self.lat.as_deref_mut() {
            // Stamps exist only while telemetry is on; consuming them
            // reads state and writes histograms, nothing the scheduler
            // or RNG can see.
            if let Some(w) = self.vcpus[vcpu].wake_at.take() {
                lat.wake_to_dispatch.observe(self.now.saturating_sub(w).as_u64() as f64);
            }
            if let Some(p) = self.vcpus[vcpu].preempt_at.take() {
                lat.preempt_hold.observe(self.now.saturating_sub(p).as_u64() as f64);
            }
        }
        let vm = self.vcpus[vcpu].vm;
        let slot = self.vcpus[vcpu].slot;
        self.vcpus[vcpu].state = VState::Running;
        self.vcpus[vcpu].assigned = pcpu;
        // BOOST persists until the VCPU runs a tick (Xen semantics);
        // it is cleared in the Tick handler, not here.
        self.vcpus[vcpu].last_charge = self.now;
        self.pcpus[pcpu].running = Some(vcpu);
        self.idle_mask &= !(1u128 << pcpu);
        self.vms[vm].acct.dispatches[slot] += 1;
        self.note_online_change(vm, 1);
        self.trace_sched(vcpu, pcpu, SchedEventKind::Dispatch);
        // Cache warm-up: involuntary preemption or PCPU migration leaves
        // the working set cold; crossing a socket also loses the LLC.
        let cold = self.vcpus[vcpu].cold || self.vcpus[vcpu].last_ran != Some(pcpu);
        let crossed_socket = self.vcpus[vcpu]
            .last_ran
            .map(|p| self.socket_of(p) != self.socket_of(pcpu))
            .unwrap_or(false);
        self.vcpus[vcpu].cold = false;
        self.vcpus[vcpu].last_ran = Some(pcpu);
        let warmup = if crossed_socket {
            self.cfg.clock.us(self.cfg.cross_socket_warmup_us)
        } else if cold {
            self.cfg.clock.us(self.cfg.warmup_us)
        } else {
            Cycles::ZERO
        };
        let mut fx = std::mem::take(&mut self.scratch_fx);
        let work = self.vms[vm]
            .kernel
            .dispatch(slot, self.now, warmup, &mut fx);
        let still_running = self.install_work(vcpu, work);
        self.apply_effects(vm, &mut fx);
        self.scratch_fx = fx;
        if still_running && self.cosched_active(vm) {
            self.maybe_cosched(vm);
        }
        still_running
    }

    /// Install the guest's declared work for a running VCPU. Returns
    /// `false` if the VCPU blocked (guest reported idle).
    fn install_work(&mut self, vcpu: usize, work: GuestWork) -> bool {
        self.vcpus[vcpu].epoch += 1;
        match work {
            GuestWork::Timed { dur, .. } => {
                self.vcpus[vcpu].spinning_since = None;
                let epoch = self.vcpus[vcpu].epoch;
                self.events
                    .schedule(self.now + dur.max(Cycles(1)), Ev::WorkDone { vcpu: vcpu as u32, epoch });
                true
            }
            GuestWork::Spin { .. } => {
                // Burns until tick/refresh; note the onset for PLE-style
                // out-of-VM spin detection.
                if self.vcpus[vcpu].spinning_since.is_none() {
                    self.vcpus[vcpu].spinning_since = Some(self.now);
                }
                true
            }
            GuestWork::Idle => {
                self.vcpus[vcpu].spinning_since = None;
                self.block_vcpu(vcpu);
                false
            }
        }
    }

    fn block_vcpu(&mut self, vcpu: usize) {
        debug_assert_eq!(self.vcpus[vcpu].state, VState::Running);
        self.charge(vcpu);
        let pcpu = self.vcpus[vcpu].assigned;
        let vm = self.vcpus[vcpu].vm;
        let slot = self.vcpus[vcpu].slot;
        self.vms[vm].kernel.preempt(slot, self.now);
        self.note_online_change(vm, -1);
        self.vcpus[vcpu].state = VState::Blocked;
        self.vcpus[vcpu].blocked_since = Some(self.now);
        self.pcpus[pcpu].running = None;
        self.idle_mask |= 1u128 << pcpu;
        self.trace_sched(vcpu, pcpu, SchedEventKind::Block);
    }

    /// Apply guest side effects: arm timers, wake VCPUs (with dispatch
    /// jitter), deliver VCRD hypercalls, and refresh online VCPUs whose
    /// work changed (lock grants, barrier releases).
    fn apply_effects(&mut self, vm: usize, fx: &mut Effects) {
        let gen = self.vms[vm].generation;
        for (thread, at) in fx.sleep_timers.drain(..) {
            self.events
                .schedule(at, Ev::SleepTimer { vm: vm as u32, thread: thread as u32, gen });
        }
        for slot in fx.wake_vcpus.drain(..) {
            let vcpu = self.vms[vm].vcpu_ids[slot];
            let jitter = if self.cfg.wake_jitter_us > 0 {
                self.cfg
                    .clock
                    .us(self.rng.below(self.cfg.wake_jitter_us + 1))
            } else {
                Cycles::ZERO
            };
            self.events.schedule(self.now + jitter, Ev::Wake { vcpu: vcpu as u32, gen });
        }
        if let Some(update) = fx.vcrd.take() {
            self.handle_vcrd(vm, update);
        }
        for slot in fx.refresh_vcpus.drain(..) {
            let vcpu = self.vms[vm].vcpu_ids[slot];
            if self.vcpus[vcpu].state != VState::Running {
                continue;
            }
            // Refresh is rare; a fresh buffer avoids aliasing the one
            // being drained.
            let mut fx2 = Effects::default();
            let work = self.vms[vm].kernel.dispatch_work(slot, self.now, &mut fx2);
            self.install_work(vcpu, work);
            self.apply_effects(vm, &mut fx2);
        }
    }

    fn deliver_wake(&mut self, vcpu: usize) {
        if self.vcpus[vcpu].state != VState::Blocked {
            return;
        }
        let vm = self.vcpus[vcpu].vm;
        let slot = self.vcpus[vcpu].slot;
        if !self.vms[vm].kernel.vcpu_runnable(slot) {
            return; // stale wake; the thread blocked again meanwhile
        }
        // Xen boosts waking VCPUs so interactive work gets the CPU fast.
        if let Some(since) = self.vcpus[vcpu].blocked_since.take() {
            self.vcpus[vcpu].blocked_accum += self.now.saturating_sub(since);
        }
        self.vcpus[vcpu].state = VState::Runnable;
        self.vcpus[vcpu].boost = self.cfg.boost_enabled;
        if self.lat.is_some() {
            self.vcpus[vcpu].wake_at = Some(self.now);
        }
        self.trace_sched(vcpu, self.vcpus[vcpu].assigned, SchedEventKind::Wake);
        // The VCPU wakes on its home PCPU (interrupt affinity): with
        // BOOST priority it preempts whatever runs there. Idle PCPUs will
        // steal it instead if the home is running something even hotter.
        let target = self.vcpus[vcpu].assigned;
        self.runq_push(target, vcpu);
        self.schedule_pcpu(target);
        // If it did not get the home PCPU, tickle one idle PCPU to steal.
        if self.vcpus[vcpu].state == VState::Runnable {
            if let Some(idle) = self.first_idle_pcpu() {
                self.schedule_pcpu(idle);
            }
        }
    }

    // ------------------------------------------------------------------
    // Coscheduling (the paper's Algorithms 3–4 mechanics)
    // ------------------------------------------------------------------

    /// Algorithm 4 runs at *every* scheduling event: whichever VCPU ends
    /// up (or stays) running after a decision, if its VM's VCRD is HIGH,
    /// it launches the IPI burst that re-gangs any demoted siblings.
    fn post_schedule_cosched(&mut self, pcpu: usize) {
        if let Some(v) = self.pcpus[pcpu].running {
            let vm = self.vcpus[v].vm;
            if self.cosched_active(vm) {
                self.maybe_cosched(vm);
            }
        }
    }

    fn cosched_active(&self, vm: usize) -> bool {
        match self.cfg.policy {
            CoschedPolicy::None | CoschedPolicy::Relaxed => false,
            CoschedPolicy::Static => self.vms[vm].concurrent_hint,
            CoschedPolicy::Adaptive | CoschedPolicy::OutOfVm => self.vms[vm].vcrd == Vcrd::High,
        }
    }

    /// Relaxed coscheduling (VMware-style): accumulate per-VCPU skew for
    /// concurrent VMs and boost only the laggards whose skew exceeds two
    /// slots. Runs once per slot (piggybacked on PCPU 0's tick).
    fn relaxed_skew_pass(&mut self) {
        let slot = self.cfg.slot();
        let bound = slot * 2;
        let ipi_at = self.now + self.cfg.ipi_latency();
        for vm in 0..self.vms.len() {
            if !self.vms[vm].concurrent_hint {
                continue;
            }
            let any_running = self.vms[vm]
                .vcpu_ids
                .iter()
                .any(|&v| self.vcpus[v].state == VState::Running);
            for i in 0..self.vms[vm].vcpu_ids.len() {
                let v = self.vms[vm].vcpu_ids[i];
                match self.vcpus[v].state {
                    VState::Running => self.vcpus[v].skew = Cycles::ZERO,
                    VState::Runnable if any_running => {
                        self.vcpus[v].skew += slot;
                        if self.vcpus[v].skew > bound && self.eligible(v) {
                            self.vcpus[v].skew = Cycles::ZERO;
                            self.vcpus[v].boost = true;
                            self.vms[vm].acct.cosched_bursts += 1;
                            self.events.schedule(ipi_at, Ev::Ipi { vcpu: v as u32 });
                            if self.flight.wants(TraceCat::Cosched) {
                                self.flight.record(
                                    self.now,
                                    FlightEv::CoschedBurst { vm: vm as u32, boosted: 1 },
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Launch an IPI burst to bring the VM's runnable siblings online.
    /// ASMan throttles bursts to one per slot per VM (the paper's
    /// per-scheduling-event mutex); the static coscheduler re-gangs far
    /// more aggressively — it has no adaptivity to tell it when
    /// coscheduling is unnecessary, which is exactly the overhead the
    /// paper charges it with.
    fn maybe_cosched(&mut self, vm: usize) {
        // Algorithm 4 coschedules at every scheduling event of a HIGH VM
        // (a mutex merely serialises concurrent IPI launches); the only
        // throttle needed is against re-ganging within one IPI flight
        // time. The same cadence applies to the static coscheduler.
        let slot_len = self.cfg.slot() / 8;
        if let Some(last) = self.vms[vm].last_cosched {
            if self.now - last < slot_len {
                return;
            }
        }
        self.vms[vm].last_cosched = Some(self.now);
        self.vms[vm].acct.cosched_bursts += 1;
        self.relocate_siblings(vm);
        let ipi_at = self.now + self.cfg.ipi_latency();
        let mut boosted = 0u32;
        for i in 0..self.vms[vm].vcpu_ids.len() {
            let v = self.vms[vm].vcpu_ids[i];
            if self.vcpus[v].state == VState::Runnable {
                self.vcpus[v].boost = true;
                self.events.schedule(ipi_at, Ev::Ipi { vcpu: v as u32 });
                boosted += 1;
            }
        }
        if self.flight.wants(TraceCat::Cosched) {
            self.flight
                .record(self.now, FlightEv::CoschedBurst { vm: vm as u32, boosted });
        }
    }

    /// Algorithm 3, lines 8–15: put the VM's runnable VCPUs into
    /// runqueues of distinct PCPUs (none of which already hosts a sibling)
    /// so the IPI burst can bring them online simultaneously.
    fn relocate_siblings(&mut self, vm: usize) {
        // PCPUs already occupied by a sibling (running or queued). The
        // oracle allocates afresh per burst instead of reusing scratch.
        let mut occupied = if Q::NAIVE {
            Vec::new()
        } else {
            std::mem::take(&mut self.scratch_occupied)
        };
        occupied.clear();
        occupied.resize(self.pcpus.len(), false);
        for i in 0..self.vms[vm].vcpu_ids.len() {
            let v = self.vms[vm].vcpu_ids[i];
            match self.vcpus[v].state {
                VState::Running => occupied[self.vcpus[v].assigned] = true,
                VState::Runnable => {}
                VState::Blocked => {}
            }
        }
        for i in 0..self.vms[vm].vcpu_ids.len() {
            let v = self.vms[vm].vcpu_ids[i];
            if self.vcpus[v].state != VState::Runnable {
                continue;
            }
            let home = self.vcpus[v].assigned;
            if !occupied[home] {
                occupied[home] = true;
                continue;
            }
            // Find a PCPU with no sibling: prefer idle ones, then PCPUs
            // not currently running another VM's coscheduled gang member
            // (two gangs fighting over the same PCPUs defeats both). When
            // LLC-aware (§7 future work), also prefer the home socket so
            // the gang shares a last-level cache.
            let home_socket = self.socket_of(home);
            let target = (0..self.pcpus.len())
                .filter(|&p| !occupied[p])
                .min_by_key(|&p| {
                    let gang_conflict = self.pcpus[p]
                        .running
                        .map(|r| {
                            let rvm = self.vcpus[r].vm;
                            rvm != vm && self.cosched_active(rvm)
                        })
                        .unwrap_or(false);
                    let off_socket = self.cfg.llc_aware && self.socket_of(p) != home_socket;
                    (
                        gang_conflict as u8,
                        off_socket as u8,
                        self.pcpus[p].running.is_some() as u8,
                        self.pcpus[p].runq.len(),
                        p,
                    )
                });
            let Some(target) = target else {
                break; // more VCPUs than PCPUs without siblings
            };
            self.runq_remove(v);
            self.vcpus[v].assigned = target;
            self.runq_push(target, v);
            self.vms[vm].acct.migrations += 1;
            if self.flight.wants(TraceCat::Sched) {
                self.flight.record(
                    self.now,
                    FlightEv::Migrate {
                        vcpu: v as u32,
                        vm: vm as u32,
                        from: home as u32,
                        to: target as u32,
                    },
                );
            }
            occupied[target] = true;
        }
        if !Q::NAIVE {
            self.scratch_occupied = occupied;
        }
    }

    /// Fold the machine's complete deterministic state into a `u64`
    /// fingerprint: the clock, the pending event set, the RNG words,
    /// every PCPU runqueue, every VCPU's scheduler state, and every VM
    /// including its guest kernel and accounting. Two machines with
    /// equal fingerprints (built from the same configuration) produce
    /// identical futures, so the checkpoint subsystem compares this
    /// between a restored host and its straight-through twin. Wall-time
    /// and telemetry-only state (run timers, flight buffers, schedule
    /// traces, latency histograms) is deliberately excluded: it never
    /// feeds back into scheduling decisions.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.now.as_u64());
        h.write_u64(self.events_processed);
        let rng = self.rng.state();
        for w in rng {
            h.write_u64(w);
        }
        h.write_u64(self.total_weight);
        h.write_u128(self.idle_mask);
        h.write_u128(self.queued_mask);
        h.write_u32(self.derate_pct);
        h.write_bool(self.reuse_slots);
        self.events.fold_state(&mut h, &mut fold_ev);
        h.write_usize(self.pcpus.len());
        for p in &self.pcpus {
            h.write_opt_u64(p.running.map(|v| v as u64));
            h.write_usize(p.runq.len());
            for &v in &p.runq {
                h.write_usize(v);
            }
        }
        h.write_usize(self.vcpus.len());
        for v in &self.vcpus {
            h.write_usize(v.vm);
            h.write_usize(v.slot);
            h.write_u32(match v.state {
                VState::Runnable => 0,
                VState::Running => 1,
                VState::Blocked => 2,
            });
            h.write_usize(v.assigned);
            h.write_i64(v.credit);
            h.write_bool(v.boost);
            h.write_u64(v.epoch);
            h.write_u64(v.last_charge.as_u64());
            h.write_bool(v.parked);
            h.write_bool(v.cold);
            h.write_opt_u64(v.last_ran.map(|p| p as u64));
            h.write_opt_u64(v.spinning_since.map(|c| c.as_u64()));
            h.write_u64(v.skew.as_u64());
            h.write_opt_u64(v.blocked_since.map(|c| c.as_u64()));
            h.write_u64(v.blocked_accum.as_u64());
            h.write_opt_u64(v.wake_at.map(|c| c.as_u64()));
            h.write_opt_u64(v.preempt_at.map(|c| c.as_u64()));
            h.write_usize(v.runq_pos);
        }
        h.write_usize(self.vms.len());
        for vm in &self.vms {
            h.write_str(&vm.name);
            h.write_u32(vm.weight);
            h.write_u32(match vm.cap {
                CapMode::WorkConserving => 0,
                CapMode::NonWorkConserving => 1,
            });
            h.write_bool(vm.concurrent_hint);
            h.write_bool(vm.finite);
            h.write_usize(vm.vcpu_ids.len());
            for &id in &vm.vcpu_ids {
                h.write_usize(id);
            }
            h.write_bool(vm.vcrd == Vcrd::High);
            h.write_u64(vm.vcrd_epoch);
            h.write_u64(vm.vcrd_high_since.as_u64());
            h.write_opt_u64(vm.last_cosched.map(|c| c.as_u64()));
            h.write_usize(vm.online_count);
            h.write_u64(vm.co_last.as_u64());
            h.write_bool(vm.evacuated);
            h.write_u32(vm.generation);
            let a = &vm.acct;
            h.write_usize(a.vcpu_online.len());
            for c in &a.vcpu_online {
                h.write_u64(c.as_u64());
            }
            for d in &a.dispatches {
                h.write_u64(*d);
            }
            h.write_u64(a.migrations);
            h.write_u64(a.cosched_bursts);
            h.write_u64(a.vcrd_raises);
            h.write_u64(a.vcrd_high_cycles.as_u64());
            for c in &a.co_online {
                h.write_u64(c.as_u64());
            }
            for c in &a.co_online_high {
                h.write_u64(c.as_u64());
            }
            vm.kernel.fold_state(&mut h);
        }
        h.write_usize(self.adopted_streams.len());
        for s in &self.adopted_streams {
            h.write_usize(s.len());
        }
        h.finish()
    }

    /// `do_vcrd_op` hypercall handler.
    fn handle_vcrd(&mut self, vm: usize, update: VcrdUpdate) {
        if !matches!(
            self.cfg.policy,
            CoschedPolicy::Adaptive | CoschedPolicy::OutOfVm
        ) {
            return; // baselines ignore the hypercall
        }
        self.note_online_change(vm, 0);
        let prev = self.vms[vm].vcrd;
        if prev != update.vcrd && self.flight.wants(TraceCat::Cosched) {
            self.flight.record(
                self.now,
                FlightEv::VcrdChange {
                    vm: vm as u32,
                    high: update.vcrd == Vcrd::High,
                },
            );
        }
        match (prev, update.vcrd) {
            (Vcrd::Low, Vcrd::High) => {
                self.vms[vm].vcrd = Vcrd::High;
                self.vms[vm].vcrd_high_since = self.now;
                self.vms[vm].acct.vcrd_raises += 1;
                // Allow an immediate burst even if one ran this slot.
                self.vms[vm].last_cosched = None;
                self.maybe_cosched(vm);
            }
            (Vcrd::High, Vcrd::High) => { /* extension: timer re-armed below */ }
            (Vcrd::High, Vcrd::Low) => {
                let since = self.vms[vm].vcrd_high_since;
                self.vms[vm].acct.vcrd_high_cycles += self.now - since;
                self.vms[vm].vcrd = Vcrd::Low;
            }
            (Vcrd::Low, Vcrd::Low) => {}
        }
        self.vms[vm].vcrd_epoch += 1;
        if let Some(x) = update.expire_in {
            let epoch = self.vms[vm].vcrd_epoch;
            self.events
                .schedule(self.now + x, Ev::VcrdTimer { vm: vm as u32, epoch });
        }
    }
}

/// Encode one pending [`Ev`] payload for the state fingerprint: a
/// distinct discriminant per variant plus every payload field, so no two
/// events can alias.
fn fold_ev(ev: &Ev, h: &mut Fnv) {
    match ev {
        Ev::Tick { pcpu } => {
            h.write_u32(0);
            h.write_u32(*pcpu);
        }
        Ev::Assign => h.write_u32(1),
        Ev::Reschedule { pcpu } => {
            h.write_u32(2);
            h.write_u32(*pcpu);
        }
        Ev::WorkDone { vcpu, epoch } => {
            h.write_u32(3);
            h.write_u32(*vcpu);
            h.write_u64(*epoch);
        }
        Ev::SleepTimer { vm, thread, gen } => {
            h.write_u32(4);
            h.write_u32(*vm);
            h.write_u32(*thread);
            h.write_u32(*gen);
        }
        Ev::VcrdTimer { vm, epoch } => {
            h.write_u32(5);
            h.write_u32(*vm);
            h.write_u64(*epoch);
        }
        Ev::Ipi { vcpu } => {
            h.write_u32(6);
            h.write_u32(*vcpu);
        }
        Ev::Wake { vcpu, gen } => {
            h.write_u32(7);
            h.write_u32(*vcpu);
            h.write_u32(*gen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use asman_sim::Clock;
    use asman_workloads::{Op, ScriptProgram};

    fn clk() -> Clock {
        Clock::default()
    }

    /// A busy-looping compute workload with `threads` threads.
    fn busy(threads: usize) -> Box<ScriptProgram> {
        Box::new(
            ScriptProgram::homogeneous("busy", threads, vec![Op::Compute(clk().ms(1))]).looping(),
        )
    }

    fn idle_vm(name: &str, vcpus: usize) -> VmSpec {
        // A program whose threads finish instantly: models Domain-0 with
        // no workload.
        VmSpec::new(
            name,
            vcpus,
            Box::new(ScriptProgram::homogeneous("idle", vcpus, vec![])),
        )
    }

    #[test]
    fn single_vm_finishes_compute() {
        let total = clk().ms(50);
        let p = ScriptProgram::homogeneous("job", 2, vec![Op::Compute(total)]);
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![VmSpec::new("v1", 2, Box::new(p))],
        );
        let done = m.run_to_completion(clk().secs(5));
        assert!(done, "compute job must finish");
        let fin = m.vm_kernel(0).stats().finished_at.expect("finished");
        // With idle PCPUs and 100% share it should take ~50 ms.
        let secs = clk().to_secs(fin);
        assert!(secs < 0.2, "took {secs}s for 50ms of work");
    }

    #[test]
    fn flight_recorder_captures_rebased_cross_layer_stream() {
        use asman_sim::flight::VM_UNPATCHED;
        // Two contending VMs with a contended critical section so every
        // layer produces events.
        let cfg = MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        };
        let section = vec![
            Op::CriticalSection {
                lock: 0,
                hold: clk().us(50),
            },
            Op::Compute(clk().us(20)),
        ];
        let prog = |n: &str| {
            Box::new(ScriptProgram::homogeneous(n, 4, section.clone()).looping())
        };
        let mut m = Machine::new(
            cfg,
            vec![VmSpec::new("a", 2, prog("a")), VmSpec::new("b", 2, prog("b"))],
        );
        m.enable_flight(CatMask::ALL, 100_000);
        m.run_until(clk().ms(200));
        m.export_metrics(&mut MetricsRegistry::new()); // must not panic
        let events = m.flight_events();
        assert!(!events.is_empty(), "an active run must record events");
        assert!(
            events.windows(2).all(|w| w[0].t <= w[1].t),
            "merged stream must be time-ordered"
        );
        let mut cats = [false; asman_sim::flight::FLIGHT_CATS];
        for e in &events {
            cats[e.ev.cat() as usize] = true;
            // Guest events must be rebased to global ids.
            if let FlightEv::LockAcquire { vm, vcpu, .. } = e.ev {
                assert_ne!(vm, VM_UNPATCHED, "guest event not rebased");
                assert!((vcpu as usize) < 4, "vcpu {vcpu} out of range");
                // VM 0 owns global VCPUs 0–1, VM 1 owns 2–3.
                assert_eq!(vcpu / 2, vm, "vcpu {vcpu} not owned by vm {vm}");
            }
        }
        assert!(cats[TraceCat::Sched as usize], "sched events expected");
        assert!(cats[TraceCat::Credit as usize], "credit events expected");
        assert!(cats[TraceCat::Lock as usize], "lock events expected");
        // The drain empties the buffers.
        assert!(m.flight_events().is_empty());
    }

    #[test]
    fn disabled_flight_recorder_stays_empty() {
        let total = clk().ms(20);
        let p = ScriptProgram::homogeneous("job", 2, vec![Op::Compute(total)]);
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![VmSpec::new("v1", 2, Box::new(p))],
        );
        m.run_to_completion(clk().secs(5));
        assert!(!m.flight().is_enabled());
        assert!(m.flight_events().is_empty());
        assert!(m.flight_totals().iter().all(|&(_, seen, _)| seen == 0));
    }

    #[test]
    fn equal_weights_share_equally_when_contended() {
        // Two 4-VCPU busy VMs on 4 PCPUs: each should get ~50%.
        let cfg = MachineConfig {
            pcpus: 4,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(
            cfg,
            vec![VmSpec::new("a", 4, busy(4)), VmSpec::new("b", 4, busy(4))],
        );
        m.run_until(clk().secs(3));
        let ra = m.vm_accounting(0).online_rate(m.now());
        let rb = m.vm_accounting(1).online_rate(m.now());
        assert!((ra - 0.5).abs() < 0.05, "vm a rate {ra}");
        assert!((rb - 0.5).abs() < 0.05, "vm b rate {rb}");
    }

    #[test]
    fn weights_drive_proportional_share() {
        // 2:1 weights, both busy, fully contended machine.
        let cfg = MachineConfig {
            pcpus: 4,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(
            cfg,
            vec![
                VmSpec::new("heavy", 4, busy(4)).weight(512),
                VmSpec::new("light", 4, busy(4)).weight(256),
            ],
        );
        m.run_until(clk().secs(3));
        let rh = m.vm_accounting(0).online_rate(m.now());
        let rl = m.vm_accounting(1).online_rate(m.now());
        let ratio = rh / rl;
        assert!((ratio - 2.0).abs() < 0.25, "share ratio {ratio} != 2");
    }

    #[test]
    fn nwc_cap_limits_online_rate_with_idle_peer() {
        // The paper's single-VM setup: V0 (8 VCPUs, idle, weight 256) +
        // V1 (4 busy VCPUs, weight 64 -> ω = 0.2, online rate 40%), NWC.
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![
                idle_vm("v0", 8),
                VmSpec::new("v1", 4, busy(4))
                    .weight(64)
                    .cap(CapMode::NonWorkConserving),
            ],
        );
        assert!((m.configured_online_rate(1) - 0.4).abs() < 1e-9);
        m.run_until(clk().secs(3));
        let r = m.vm_accounting(1).online_rate(m.now());
        assert!((r - 0.4).abs() < 0.05, "measured rate {r}, expected ~0.4");
    }

    #[test]
    fn work_conserving_lets_vm_exceed_share() {
        // Same weights as above but WC: the idle peer's share is
        // available, so V1 runs ~100%.
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![
                idle_vm("v0", 8),
                VmSpec::new("v1", 4, busy(4))
                    .weight(64)
                    .cap(CapMode::WorkConserving),
            ],
        );
        m.run_until(clk().secs(2));
        let r = m.vm_accounting(1).online_rate(m.now());
        assert!(r > 0.9, "WC rate {r} should be ~1.0");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let cfg = MachineConfig {
                seed,
                ..MachineConfig::default()
            };
            let mut m = Machine::new(
                cfg,
                vec![idle_vm("v0", 8), VmSpec::new("v1", 4, busy(4)).weight(64)],
            );
            m.run_until(clk().secs(1));
            (
                m.events_processed(),
                m.vm_accounting(1).total_online(),
                m.vm_accounting(1).dispatches.clone(),
            )
        };
        assert_eq!(run(1), run(1));
        // Different machine seed shifts wake jitter -> different trace.
        // (Equality is astronomically unlikely but not impossible, so we
        // only check the strong property: same-seed equality.)
    }

    #[test]
    fn blocked_vcpus_do_not_consume_cpu() {
        // Sleep-only workload: VM online time must be tiny.
        let p = ScriptProgram::homogeneous(
            "sleepy",
            2,
            vec![Op::Sleep(clk().ms(100)), Op::Compute(Cycles(1_000))],
        );
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![VmSpec::new("s", 2, Box::new(p))],
        );
        assert!(m.run_to_completion(clk().secs(2)));
        let online = m.vm_accounting(0).total_online();
        assert!(
            clk().to_ms(online) < 5.0,
            "sleeping VM consumed {} ms",
            clk().to_ms(online)
        );
        // But simulated time advanced past the sleep.
        let fin = m.vm_kernel(0).stats().finished_at.unwrap();
        assert!(clk().to_ms(fin) >= 100.0);
    }

    #[test]
    fn one_vcpu_per_pcpu_invariant() {
        // Spot-check the core structural invariant under load: every
        // running VCPU is unique and matches its PCPU's record.
        let cfg = MachineConfig {
            pcpus: 4,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(
            cfg,
            vec![
                VmSpec::new("a", 4, busy(4)),
                VmSpec::new("b", 4, busy(4)),
                VmSpec::new("c", 2, busy(2)),
            ],
        );
        for step in 1..=40u64 {
            m.run_until(clk().ms(25 * step));
            let mut seen = std::collections::HashSet::new();
            for (p, pc) in m.pcpus.iter().enumerate() {
                if let Some(v) = pc.running {
                    assert!(seen.insert(v), "vcpu {v} on two pcpus");
                    assert_eq!(m.vcpus[v].assigned, p);
                    assert_eq!(m.vcpus[v].state, VState::Running);
                }
                for &v in &pc.runq {
                    assert_eq!(m.vcpus[v].state, VState::Runnable, "runq holds {v}");
                    assert!(!seen.contains(&v), "running vcpu also queued");
                }
            }
        }
    }

    #[test]
    fn static_cosched_counts_bursts_for_concurrent_vm() {
        let cfg = MachineConfig {
            policy: CoschedPolicy::Static,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(
            cfg,
            vec![
                VmSpec::new("con", 4, busy(4)).concurrent(),
                VmSpec::new("other", 4, busy(4)),
            ],
        );
        m.run_until(clk().secs(1));
        assert!(m.vm_accounting(0).cosched_bursts > 0, "CON VM coscheduled");
        assert_eq!(m.vm_accounting(1).cosched_bursts, 0, "plain VM not");
    }

    #[test]
    fn credit_policy_ignores_vcrd_hypercalls() {
        // An observer that always demands HIGH must have no effect under
        // CoschedPolicy::None.
        struct Always;
        impl asman_guest::SpinObserver for Always {
            fn on_spinlock_wait(&mut self, _now: Cycles, _wait: Cycles) -> Option<VcrdUpdate> {
                Some(VcrdUpdate {
                    vcrd: Vcrd::High,
                    expire_in: Some(Cycles(1_000_000)),
                })
            }
            fn on_vcrd_timer(&mut self, _now: Cycles) -> Option<VcrdUpdate> {
                None
            }
        }
        let p = ScriptProgram::homogeneous(
            "l",
            2,
            vec![Op::CriticalSection {
                lock: 0,
                hold: Cycles(1_000),
            }],
        )
        .looping();
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![VmSpec::new("v", 2, Box::new(p)).observer(Box::new(Always))],
        );
        m.run_until(clk().ms(200));
        assert_eq!(m.vm_vcrd(0), Vcrd::Low);
        assert_eq!(m.vm_accounting(0).vcrd_raises, 0);
        assert_eq!(m.vm_accounting(0).cosched_bursts, 0);
    }

    #[test]
    fn adaptive_policy_honours_vcrd_and_expires() {
        struct Once {
            fired: bool,
        }
        impl asman_guest::SpinObserver for Once {
            fn on_spinlock_wait(&mut self, _now: Cycles, _wait: Cycles) -> Option<VcrdUpdate> {
                if self.fired {
                    None
                } else {
                    self.fired = true;
                    Some(VcrdUpdate {
                        vcrd: Vcrd::High,
                        expire_in: Some(Clock::default().ms(5)),
                    })
                }
            }
            fn on_vcrd_timer(&mut self, _now: Cycles) -> Option<VcrdUpdate> {
                Some(VcrdUpdate {
                    vcrd: Vcrd::Low,
                    expire_in: None,
                })
            }
        }
        let p = ScriptProgram::homogeneous(
            "l",
            2,
            vec![
                Op::CriticalSection {
                    lock: 0,
                    hold: Cycles(1_000),
                },
                Op::Compute(clk().ms(1)),
            ],
        )
        .looping();
        let cfg = MachineConfig {
            policy: CoschedPolicy::Adaptive,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(
            cfg,
            vec![VmSpec::new("v", 2, Box::new(p)).observer(Box::new(Once { fired: false }))],
        );
        m.run_until(clk().ms(500));
        assert_eq!(m.vm_accounting(0).vcrd_raises, 1);
        assert_eq!(m.vm_vcrd(0), Vcrd::Low, "expired back to LOW");
        let high_ms = clk().to_ms(m.vm_accounting(0).vcrd_high_cycles);
        assert!(
            (4.0..=6.5).contains(&high_ms),
            "VCRD HIGH for {high_ms} ms, expected ~5"
        );
    }

    #[test]
    fn more_vcpus_than_pcpus_rejected() {
        let r = std::panic::catch_unwind(|| {
            Machine::new(
                MachineConfig {
                    pcpus: 2,
                    ..MachineConfig::default()
                },
                vec![VmSpec::new("v", 4, busy(4))],
            )
        });
        assert!(r.is_err());
    }

    #[test]
    fn live_migration_moves_a_vm_and_preserves_guest_progress() {
        // A VM whose threads sleep until t=30 ms, then compute 40 ms.
        // Migrate it at t=10 ms (mid-sleep) with a 5 ms pause: the sleep
        // must be re-armed on the destination and the program finish.
        let prog = ScriptProgram::homogeneous(
            "job",
            2,
            vec![Op::Sleep(clk().ms(30)), Op::Compute(clk().ms(40))],
        );
        let mut src = Machine::new(
            MachineConfig::default(),
            vec![idle_vm("v0", 2), VmSpec::new("mig", 2, Box::new(prog))],
        );
        src.run_until(clk().ms(10));
        let image = src.extract_vm(1);
        assert_eq!(image.vcpus(), 2);
        assert!(src.vm_evacuated(1));
        assert_eq!(src.active_vm_count(), 1);
        src.check_invariants();
        let mut dst = Machine::new(MachineConfig::default(), vec![idle_vm("d0", 2)]);
        dst.run_until(clk().ms(10));
        let vm = dst.inject_vm(image, dst.now() + clk().ms(5));
        dst.check_invariants();
        // The source runs on past the stale sleep deadline: the
        // tombstone guard must drop the old SleepTimer events.
        src.run_until(clk().ms(100));
        src.check_invariants();
        assert!(dst.run_to_completion(clk().secs(5)), "migrated VM must finish");
        let fin = dst.vm_kernel(vm).stats().finished_at.expect("finished");
        assert!(
            clk().to_ms(fin) >= 30.0,
            "finished at {} ms, before its sleep deadline",
            clk().to_ms(fin)
        );
        dst.check_invariants();
    }

    #[test]
    fn live_migration_midwork_carries_accounting_and_pause_is_dead_time() {
        // Migrate a busy VM mid-compute: accounting must travel, and the
        // VM must come back online only after the stop-and-copy pause.
        let cfg = MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        };
        let mut src = Machine::new(
            cfg,
            vec![idle_vm("v0", 1), VmSpec::new("busy", 2, busy(2))],
        );
        src.run_until(clk().ms(50));
        let online_before = src.vm_accounting(1).total_online();
        assert!(!online_before.is_zero());
        let image = src.extract_vm(1);
        assert_eq!(image.acct.total_online(), online_before);
        let mut dst = Machine::new(cfg, vec![idle_vm("d0", 1)]);
        dst.run_until(clk().ms(50));
        let pause = clk().ms(20);
        let resume_at = dst.now() + pause;
        let vm = dst.inject_vm(image, resume_at);
        dst.run_until(clk().ms(80));
        dst.check_invariants();
        let acct = dst.vm_accounting(vm);
        assert!(
            acct.total_online() > online_before,
            "migrated VM never ran on the destination"
        );
        // No online time may accrue during the pause: everything beyond
        // the carried total fits in the post-resume window (2 VCPUs can
        // each be online for the full window).
        let gained = acct.total_online() - online_before;
        assert!(
            gained <= (clk().ms(80) - resume_at) * 2,
            "VM was online during the stop-and-copy pause"
        );
    }

    #[test]
    fn extracting_twice_panics() {
        let mut m = Machine::new(
            MachineConfig::default(),
            vec![idle_vm("v0", 1), VmSpec::new("b", 2, busy(2))],
        );
        m.run_until(clk().ms(10));
        let _ = m.extract_vm(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.extract_vm(1)));
        assert!(r.is_err(), "double extraction must panic");
    }

    /// Under the audit feature, the shadow ledger must stay exact across
    /// an extract/inject cycle on both hosts.
    #[cfg(feature = "audit")]
    #[test]
    fn auditor_stays_green_across_migration() {
        let cfg = MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        };
        let mut src = Machine::new(
            cfg,
            vec![idle_vm("v0", 1), VmSpec::new("busy", 2, busy(2))],
        );
        src.run_until(clk().ms(40));
        let image = src.extract_vm(1);
        let mut dst = Machine::new(cfg, vec![idle_vm("d0", 1)]);
        dst.run_until(clk().ms(40));
        dst.inject_vm(image, dst.now() + clk().ms(10));
        src.run_until(clk().ms(200));
        dst.run_until(clk().ms(200));
        assert!(src.audit_checkpoints() > 10);
        assert!(dst.audit_checkpoints() > 10);
    }

    /// A lock-heavy overcommitted two-VM machine over the given queue —
    /// enough churn to exercise stealing, preemption and credit flow.
    fn contended<Q: asman_sim::SimQueue<Ev>>() -> Machine<Q> {
        let section = vec![
            Op::CriticalSection {
                lock: 0,
                hold: clk().us(150),
            },
            Op::Compute(clk().us(80)),
        ];
        let prog = |n: &str| Box::new(ScriptProgram::homogeneous(n, 2, section.clone()).looping());
        Machine::build(
            MachineConfig {
                pcpus: 2,
                ..MachineConfig::default()
            },
            vec![VmSpec::new("a", 2, prog("a")), VmSpec::new("b", 2, prog("b"))],
        )
    }

    /// The oracle machine must pop the exact event sequence the
    /// optimized machine pops. Both run with full tracing, so the diff
    /// covers the scheduler's externally visible behaviour, not just
    /// its final counters.
    #[test]
    fn oracle_machine_matches_optimized_event_stream() {
        let mut fast: Machine = contended();
        let mut slow: OracleMachine = contended();
        fast.enable_flight(CatMask::ALL, 200_000);
        slow.enable_flight(CatMask::ALL, 200_000);
        fast.run_until(clk().ms(50));
        slow.run_until(clk().ms(50));
        assert_eq!(fast.events_processed(), slow.events_processed());
        assert_eq!(fast.now(), slow.now());
        let fe = fast.flight_events();
        let se = slow.flight_events();
        assert_eq!(fe.len(), se.len(), "event stream lengths diverge");
        for (i, (a, b)) in fe.iter().zip(&se).enumerate() {
            assert_eq!((a.t, &a.ev), (b.t, &b.ev), "first divergence at event {i}");
        }
        fast.check_invariants();
        slow.check_invariants();
    }

    /// A clean run under the auditor: checkpoints fire and none trips.
    #[cfg(feature = "audit")]
    #[test]
    fn auditor_passes_on_clean_run() {
        let mut m: Machine = contended();
        m.run_until(clk().ms(100));
        assert!(
            m.audit_checkpoints() > 10,
            "auditor never ran: {} checkpoints",
            m.audit_checkpoints()
        );
    }

    /// The mutation test the tentpole demands: inject a one-cycle
    /// off-by-one into every credit burn and assert the auditor
    /// *detects* it (a green run here would mean the auditor has no
    /// teeth). `panic = "abort"` applies only to release binaries, not
    /// the test profile, so `catch_unwind` observes the panic.
    #[cfg(feature = "audit")]
    #[test]
    fn auditor_catches_injected_credit_burn_off_by_one() {
        let mut m: Machine = contended();
        m.audit_inject_credit_skew(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.run_until(clk().ms(100));
        }));
        let payload = r.expect_err("auditor failed to detect the injected skew");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("credit not conserved"),
            "unexpected panic message: {msg}"
        );
    }
}
