//! Accounting snapshots exposed by the machine model.

use asman_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Kinds of scheduling transitions recorded by the schedule trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEventKind {
    /// VCPU given a PCPU.
    Dispatch,
    /// VCPU involuntarily preempted back to a runqueue.
    Preempt,
    /// VCPU blocked (guest idle).
    Block,
    /// VCPU woken (runnable again).
    Wake,
    /// VCPU parked by cap enforcement.
    Park,
    /// VCPU unparked at an accounting event.
    Unpark,
}

/// One scheduling transition (for timeline reconstruction).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Global VCPU index.
    pub vcpu: usize,
    /// Owning VM index.
    pub vm: usize,
    /// PCPU involved (the target for dispatches, the source otherwise).
    pub pcpu: usize,
    /// Transition kind.
    pub kind: SchedEventKind,
}

/// Per-VM CPU accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VmAccounting {
    /// Total cycles each VCPU spent online (mapped to a PCPU).
    pub vcpu_online: Vec<Cycles>,
    /// Number of times each VCPU was dispatched.
    pub dispatches: Vec<u64>,
    /// Number of VCPU migrations between PCPUs.
    pub migrations: u64,
    /// IPI coscheduling bursts initiated for this VM.
    pub cosched_bursts: u64,
    /// VCRD transitions LOW→HIGH observed by the VMM.
    pub vcrd_raises: u64,
    /// Total cycles the VM spent with VCRD HIGH.
    pub vcrd_high_cycles: Cycles,
    /// Time integral of VCPU-online concurrency: `co_online[k]` is the
    /// total time exactly `k` of the VM's VCPUs were online
    /// simultaneously. `co_online[n]` for an n-VCPU VM is the
    /// "effectively coscheduled" time.
    pub co_online: Vec<Cycles>,
    /// Same histogram restricted to periods with VCRD HIGH (coscheduling
    /// effectiveness diagnostics).
    pub co_online_high: Vec<Cycles>,
}

impl VmAccounting {
    /// Zeroed accounting for `vcpus` VCPUs.
    pub fn new(vcpus: usize) -> Self {
        VmAccounting {
            vcpu_online: vec![Cycles::ZERO; vcpus],
            dispatches: vec![0; vcpus],
            migrations: 0,
            cosched_bursts: 0,
            vcrd_raises: 0,
            vcrd_high_cycles: Cycles::ZERO,
            co_online: vec![Cycles::ZERO; vcpus + 1],
            co_online_high: vec![Cycles::ZERO; vcpus + 1],
        }
    }

    /// Of the time spent with VCRD HIGH, the fraction with all VCPUs
    /// online simultaneously.
    pub fn high_all_online_frac(&self) -> f64 {
        let total: u64 = self.co_online_high.iter().map(|c| c.as_u64()).sum();
        if total == 0 {
            return 0.0;
        }
        self.co_online_high.last().map(|c| c.as_u64()).unwrap_or(0) as f64 / total as f64
    }

    /// Fraction of `elapsed` during which **all** VCPUs were online
    /// simultaneously (the coscheduling quality metric).
    pub fn all_online_frac(&self, elapsed: Cycles) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        let all = self.co_online.last().copied().unwrap_or(Cycles::ZERO);
        all.as_u64() as f64 / elapsed.as_u64() as f64
    }

    /// Total online cycles summed over VCPUs.
    pub fn total_online(&self) -> Cycles {
        self.vcpu_online.iter().copied().sum()
    }

    /// Average VCPU online rate over `elapsed` simulated cycles — the
    /// paper's Equation (2) measured rather than configured.
    pub fn online_rate(&self, elapsed: Cycles) -> f64 {
        if elapsed.is_zero() || self.vcpu_online.is_empty() {
            return 0.0;
        }
        self.total_online().as_u64() as f64
            / (elapsed.as_u64() as f64 * self.vcpu_online.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_rate_is_share_of_elapsed() {
        let mut a = VmAccounting::new(4);
        for c in &mut a.vcpu_online {
            *c = Cycles(250);
        }
        // 4 VCPUs each online 250 of 1000 cycles -> 25%.
        assert!((a.online_rate(Cycles(1_000)) - 0.25).abs() < 1e-12);
        assert_eq!(a.total_online(), Cycles(1_000));
    }

    #[test]
    fn degenerate_rate_is_zero() {
        let a = VmAccounting::new(0);
        assert_eq!(a.online_rate(Cycles(100)), 0.0);
        let b = VmAccounting::new(2);
        assert_eq!(b.online_rate(Cycles::ZERO), 0.0);
    }
}
