//! Machine and VM configuration.

use asman_guest::{GuestCosts, NullObserver, SpinObserver};
use asman_sim::{Clock, Cycles};
use asman_workloads::Program;
use serde::{Deserialize, Serialize};

/// How a VM's proportional share is enforced (Xen terminology, §5.2–5.3
/// of the paper / Cherkasova et al.).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapMode {
    /// Shares are merely guarantees: a VM may receive extra CPU time when
    /// other VMs are blocked or idle (used in the multi-VM experiments).
    WorkConserving,
    /// The VM's CPU time is strictly capped at its weight proportion
    /// (used in the single-VM online-rate experiments): a VCPU whose
    /// credit is exhausted is *parked* until the next assignment.
    NonWorkConserving,
}

/// Which coscheduling strategy the VMM applies on top of the Credit
/// scheduler's proportional-share machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoschedPolicy {
    /// The unmodified Credit scheduler: VCPUs are scheduled fully
    /// asynchronously (the paper's `Credit` baseline).
    None,
    /// Static coscheduling of VMs whose `concurrent_hint` flag is set by
    /// the administrator — the authors' previous VEE'09 system, labelled
    /// `CON` in the paper's figures.
    Static,
    /// ASMan: coschedule a VM's VCPUs exactly while its Monitoring Module
    /// holds the VCRD HIGH (Algorithms 1–4).
    Adaptive,
    /// VMware-style *relaxed* coscheduling of `concurrent_hint` VMs: no
    /// gang starts; instead the VMM tracks per-VCPU skew (time spent
    /// descheduled while siblings run) and boosts only VCPUs whose skew
    /// exceeds a bound. Implemented for the related-work comparison of
    /// §6 and the ablation benches.
    Relaxed,
    /// The paper's stated future work (§7): infer the VCRD *outside* the
    /// VM, with no guest modification, from hardware spin detection
    /// (Pause-Loop-Exit style): a VCPU busy-waiting for longer than a
    /// bound raises its VM's VCRD for a fixed window.
    OutOfVm,
}

/// Physical machine and scheduler parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// CPU clock (default 2.33 GHz, the paper's Xeon X5410).
    pub clock: Clock,
    /// Number of physical CPUs (default 8: dual quad-core).
    pub pcpus: usize,
    /// Basic scheduling slot in milliseconds (Credit scheduler: 10 ms
    /// accounting tick).
    pub slot_ms: u64,
    /// Credit (re)assignment interval in slots (Credit scheduler: 30 ms
    /// ⇒ 3 slots).
    pub assign_interval_slots: u32,
    /// Inter-processor interrupt delivery latency in microseconds.
    pub ipi_latency_us: u64,
    /// Maximum random latency, in microseconds, between a VCPU becoming
    /// runnable and the scheduler reacting (interrupt/softirq noise on
    /// real hardware; this is what desynchronizes sibling VCPUs under the
    /// plain Credit scheduler).
    pub wake_jitter_us: u64,
    /// A VCPU may accumulate at most this many assignment intervals'
    /// worth of credit (idle VMs must not hoard unbounded credit — the
    /// Credit scheduler clips similarly).
    pub credit_cap_intervals: u64,
    /// Cache warm-up penalty, in microseconds of lost progress, paid by a
    /// VCPU dispatched after an involuntary preemption, a PCPU migration,
    /// or a long absence (cold caches are the classic hidden cost of
    /// (co)scheduling churn).
    pub warmup_us: u64,
    /// Number of CPU sockets; PCPUs are split evenly across them (the
    /// paper's testbed is a dual quad-core). Only meaningful together
    /// with [`cross_socket_warmup_us`](Self::cross_socket_warmup_us) /
    /// [`llc_aware`](Self::llc_aware).
    pub sockets: usize,
    /// Warm-up penalty for a migration *across* sockets (the last-level
    /// cache does not travel). Defaults to `warmup_us` (no extra cost) so
    /// the base model is socket-oblivious; the LLC ablations raise it.
    pub cross_socket_warmup_us: u64,
    /// Whether waking VCPUs receive BOOST priority (Xen's mechanism for
    /// I/O latency; on by default). Exposed for the boost ablation.
    pub boost_enabled: bool,
    /// The paper's §7 future work: make coscheduling placement LLC-aware
    /// — gang siblings onto one socket and keep wakeups socket-local.
    pub llc_aware: bool,
    /// Coscheduling strategy.
    pub policy: CoschedPolicy,
    /// Simulation seed (wake jitter and any other machine-level noise).
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            clock: Clock::default(),
            pcpus: 8,
            slot_ms: 10,
            assign_interval_slots: 3,
            ipi_latency_us: 4,
            wake_jitter_us: 300,
            credit_cap_intervals: 1,
            warmup_us: 60,
            sockets: 2,
            cross_socket_warmup_us: 60,
            boost_enabled: true,
            llc_aware: false,
            policy: CoschedPolicy::None,
            seed: 0x5eed,
        }
    }
}

impl MachineConfig {
    /// Scheduling slot length in cycles.
    pub fn slot(&self) -> Cycles {
        self.clock.ms(self.slot_ms)
    }

    /// Credit assignment interval in cycles.
    pub fn assign_interval(&self) -> Cycles {
        self.slot() * self.assign_interval_slots as u64
    }

    /// IPI latency in cycles.
    pub fn ipi_latency(&self) -> Cycles {
        self.clock.us(self.ipi_latency_us)
    }
}

/// Specification of one VM to create on the machine.
pub struct VmSpec {
    /// Name used in reports.
    pub name: String,
    /// Number of VCPUs.
    pub vcpus: usize,
    /// Proportional-share weight (Xen's integer weight parameter).
    pub weight: u32,
    /// Cap enforcement mode.
    pub cap: CapMode,
    /// Administrator's "concurrent VM" flag, honoured only by
    /// [`CoschedPolicy::Static`].
    pub concurrent_hint: bool,
    /// The workload to run.
    pub program: Box<dyn Program>,
    /// Guest-side Monitoring Module (use [`NullObserver`] for baselines).
    pub observer: Box<dyn SpinObserver>,
    /// Guest-kernel cost model.
    pub costs: GuestCosts,
}

impl VmSpec {
    /// A VM with default costs, a null observer, weight 256, work-
    /// conserving mode and no concurrent hint.
    pub fn new(name: impl Into<String>, vcpus: usize, program: Box<dyn Program>) -> Self {
        VmSpec {
            name: name.into(),
            vcpus,
            weight: 256,
            cap: CapMode::WorkConserving,
            concurrent_hint: false,
            program,
            observer: Box::new(NullObserver),
            costs: GuestCosts::default(),
        }
    }

    /// Set the weight.
    pub fn weight(mut self, w: u32) -> Self {
        self.weight = w;
        self
    }

    /// Set the cap mode.
    pub fn cap(mut self, c: CapMode) -> Self {
        self.cap = c;
        self
    }

    /// Mark as a concurrent VM for static coscheduling.
    pub fn concurrent(mut self) -> Self {
        self.concurrent_hint = true;
        self
    }

    /// Install a Monitoring Module observer.
    pub fn observer(mut self, o: Box<dyn SpinObserver>) -> Self {
        self.observer = o;
        self
    }

    /// Override the guest cost model.
    pub fn costs(mut self, c: GuestCosts) -> Self {
        self.costs = c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_workloads::ScriptProgram;

    #[test]
    fn default_machine_matches_paper_testbed() {
        let c = MachineConfig::default();
        assert_eq!(c.pcpus, 8);
        assert_eq!(c.slot(), Cycles(23_300_000)); // 10 ms at 2.33 GHz
        assert_eq!(c.assign_interval(), Cycles(69_900_000)); // 30 ms
        assert_eq!(c.ipi_latency(), Cycles(9_320)); // 4 µs
    }

    #[test]
    fn vmspec_builder_sets_fields() {
        let p = ScriptProgram::homogeneous("w", 2, vec![]);
        let s = VmSpec::new("vm", 4, Box::new(p))
            .weight(64)
            .cap(CapMode::NonWorkConserving)
            .concurrent();
        assert_eq!(s.weight, 64);
        assert_eq!(s.cap, CapMode::NonWorkConserving);
        assert!(s.concurrent_hint);
        assert_eq!(s.vcpus, 4);
    }
}
