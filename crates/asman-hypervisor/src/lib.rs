//! Virtual machine monitor model for the ASMan reproduction.
//!
//! This crate implements the Xen-like hypervisor substrate the paper
//! modifies: physical CPUs, virtual CPUs, VMs running [`asman_guest`]
//! kernels, and the **Credit scheduler** with proportional-share weights,
//! BOOST wake priority, load balancing and work-/non-work-conserving cap
//! modes — plus the coscheduling mechanics (VCPU relocation and IPI
//! bursts) that the paper's adaptive scheduler drives through the VCRD.
//!
//! Three scheduler configurations reproduce the paper's comparisons:
//!
//! | paper label | [`CoschedPolicy`] |
//! |---|---|
//! | `Credit` | [`CoschedPolicy::None`] |
//! | `CON` (static coscheduling, VEE'09) | [`CoschedPolicy::Static`] |
//! | `ASMan` | [`CoschedPolicy::Adaptive`] + an `asman-core` Monitoring Module per VM |
//!
//! # Example
//!
//! ```
//! use asman_hypervisor::{Machine, MachineConfig, VmSpec};
//! use asman_workloads::{Op, ScriptProgram};
//! use asman_sim::{Clock, Cycles};
//!
//! let clk = Clock::default();
//! let job = ScriptProgram::homogeneous("job", 2, vec![Op::Compute(clk.ms(5))]);
//! let mut machine = Machine::new(
//!     MachineConfig::default(),
//!     vec![VmSpec::new("vm1", 2, Box::new(job))],
//! );
//! assert!(machine.run_to_completion(clk.secs(1)));
//! assert!(machine.vm_kernel(0).stats().finished_at.is_some());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod metrics;

pub use config::{CapMode, CoschedPolicy, MachineConfig, VmSpec};
pub use machine::{Ev, Machine, OracleMachine, PerfSnapshot, VmCounters, VmImage, VmRetirement};
pub use metrics::{SchedEvent, SchedEventKind, VmAccounting};
