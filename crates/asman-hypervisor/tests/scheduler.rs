//! Scheduler-mechanics integration tests: cap parking, boost handling,
//! relocation, migration accounting and the coscheduling IPI path.

use asman_guest::{NullObserver, SpinObserver, Vcrd, VcrdUpdate};
use asman_hypervisor::{CapMode, CoschedPolicy, Machine, MachineConfig, VmSpec};
use asman_sim::{Clock, Cycles};
use asman_workloads::{Op, ScriptProgram};

fn clk() -> Clock {
    Clock::default()
}

fn busy(threads: usize) -> Box<ScriptProgram> {
    Box::new(ScriptProgram::homogeneous("busy", threads, vec![Op::Compute(clk().ms(1))]).looping())
}

#[test]
fn parked_vcpus_are_never_scheduled_between_accountings() {
    // Sample the capped VM's online count at fine granularity: between
    // parking (prompt, at cap overdraft) and the accounting event the
    // VCPU must stay offline.
    let mut m = Machine::new(
        MachineConfig::default(),
        vec![
            VmSpec::new(
                "idle",
                8,
                Box::new(ScriptProgram::homogeneous("i", 8, vec![])),
            ),
            VmSpec::new("busy", 4, busy(4))
                .weight(32)
                .cap(CapMode::NonWorkConserving),
        ],
    );
    // Long-run cap: strictly at most the configured rate plus slack.
    m.run_until(clk().secs(3));
    let rate = m.vm_accounting(1).online_rate(m.now());
    let configured = m.configured_online_rate(1);
    assert!(
        rate < configured + 0.05,
        "rate {rate:.3} vs configured {configured:.3}"
    );
}

#[test]
fn migrations_are_accounted() {
    // Overcommitted machine: stealing must happen and be counted.
    let cfg = MachineConfig {
        pcpus: 4,
        ..MachineConfig::default()
    };
    // A frequently-waking VM whose boost preemptions demote the busy
    // VM's VCPUs to other PCPUs (wake-to-home + demotion tickling).
    let waker = Box::new(
        ScriptProgram::homogeneous(
            "waker",
            4,
            vec![Op::Sleep(clk().ms(2)), Op::Compute(clk().us(200))],
        )
        .looping(),
    );
    let mut m = Machine::new(
        cfg,
        vec![
            VmSpec::new("busy", 4, busy(4)),
            VmSpec::new("waker", 4, waker),
        ],
    );
    m.run_until(clk().secs(2));
    let total: u64 = (0..2).map(|vm| m.vm_accounting(vm).migrations).sum();
    assert!(total > 0, "boost preemptions must trigger migrations");
}

#[test]
fn dispatch_counts_are_positive_for_runnable_vms() {
    let mut m = Machine::new(MachineConfig::default(), vec![VmSpec::new("v", 2, busy(2))]);
    m.run_until(clk().ms(500));
    let d = m.vm_accounting(0);
    assert!(d.dispatches.iter().all(|&x| x > 0), "{:?}", d.dispatches);
    assert!(d.total_online() > Cycles::ZERO);
}

/// Observer that raises the VCRD on the very first spinlock wait and
/// never lowers it — lets us test relocation/co-online behaviour.
struct RaiseOnce {
    fired: bool,
}

impl SpinObserver for RaiseOnce {
    fn on_spinlock_wait(&mut self, _now: Cycles, _wait: Cycles) -> Option<VcrdUpdate> {
        if self.fired {
            None
        } else {
            self.fired = true;
            Some(VcrdUpdate {
                vcrd: Vcrd::High,
                expire_in: Some(Clock::default().secs(30)),
            })
        }
    }
    fn on_vcrd_timer(&mut self, _now: Cycles) -> Option<VcrdUpdate> {
        Some(VcrdUpdate {
            vcrd: Vcrd::Low,
            expire_in: None,
        })
    }
}

#[test]
fn adaptive_high_vm_gets_coscheduled_online_windows() {
    // 2x overcommit so asynchronous scheduling would rarely align all
    // four siblings; a permanently-HIGH VCRD must push the all-online
    // fraction well above the competing plain VM's.
    let cfg = MachineConfig {
        pcpus: 4,
        policy: CoschedPolicy::Adaptive,
        ..MachineConfig::default()
    };
    // Uncontended per-thread critical sections: every acquisition tickles
    // the observer (arming the VCRD on the first one) without coupling
    // the threads, so alignment is purely the scheduler's doing.
    let work = |_: u64| {
        let scripts: Vec<Vec<Op>> = (0..4)
            .map(|t| {
                vec![
                    Op::CriticalSection {
                        lock: t,
                        hold: Cycles(800),
                    },
                    Op::Compute(clk().us(400)),
                ]
            })
            .collect();
        Box::new(ScriptProgram::new("l", scripts).looping())
    };
    // Three VMs, so the gang's complement is split across two plain VMs
    // (with only two VMs the complement of a gang is itself a gang).
    let mut m = Machine::new(
        cfg,
        vec![
            VmSpec::new("watched", 4, work(1)).observer(Box::new(RaiseOnce { fired: false })),
            VmSpec::new("plain-a", 4, work(2)),
            VmSpec::new("plain-b", 4, work(3)),
        ],
    );
    m.run_until(clk().secs(3));
    assert_eq!(m.vm_vcrd(0), Vcrd::High, "raised and held");
    let bursts = m.vm_accounting(0).cosched_bursts;
    assert!(bursts > 10, "expected IPI bursts, got {bursts}");
    let watched = m.vm_accounting(0).all_online_frac(m.now());
    let plain = (m.vm_accounting(1).all_online_frac(m.now())
        + m.vm_accounting(2).all_online_frac(m.now()))
        / 2.0;
    assert!(
        watched > plain * 1.5 && watched > 0.2,
        "coscheduled VM must align far more: {watched:.3} vs {plain:.3} ({bursts} bursts)"
    );
}

#[test]
fn out_of_vm_policy_detects_pure_spin_without_observer() {
    // A guest that spins on a kernel lock held by a preempted sibling —
    // with a NullObserver. Only PLE-style detection can see it.
    let cfg = MachineConfig {
        pcpus: 2,
        policy: CoschedPolicy::OutOfVm,
        ..MachineConfig::default()
    };
    let locky = Box::new(
        ScriptProgram::homogeneous(
            "l",
            2,
            vec![
                Op::CriticalSection {
                    lock: 0,
                    hold: Cycles(clk().us(400).as_u64()),
                },
                Op::Compute(Cycles(clk().us(100).as_u64())),
            ],
        )
        .looping(),
    );
    let mut m = Machine::new(
        cfg,
        vec![
            VmSpec::new("spinny", 2, locky).observer(Box::new(NullObserver)),
            VmSpec::new("noise", 2, busy(2)),
        ],
    );
    m.run_until(clk().secs(5));
    assert!(
        m.vm_accounting(0).vcrd_raises > 0,
        "PLE detection must fire on sustained spinning"
    );
}

#[test]
fn relaxed_policy_touches_only_concurrent_vms() {
    let cfg = MachineConfig {
        pcpus: 4,
        policy: CoschedPolicy::Relaxed,
        ..MachineConfig::default()
    };
    let sync = |seed: u64| {
        Box::new(
            asman_workloads::NasSpec::new(
                asman_workloads::NasBenchmark::CG,
                asman_workloads::ProblemClass::S,
                4,
            )
            .repeating()
            .build(seed),
        )
    };
    let mut m = Machine::new(
        cfg,
        vec![
            VmSpec::new("flagged", 4, sync(1)).concurrent(),
            VmSpec::new("plain", 4, sync(2)),
        ],
    );
    m.run_until(clk().secs(3));
    assert!(
        m.vm_accounting(0).cosched_bursts > 0,
        "skew boosts for flagged"
    );
    assert_eq!(m.vm_accounting(1).cosched_bursts, 0, "none for unflagged");
}

#[test]
fn co_online_histogram_integrates_to_elapsed_time() {
    let mut m = Machine::new(MachineConfig::default(), vec![VmSpec::new("v", 3, busy(3))]);
    m.run_until(clk().secs(1));
    let acct = m.vm_accounting(0);
    let total: u64 = acct.co_online.iter().map(|c| c.as_u64()).sum();
    let elapsed = m.now().as_u64();
    assert!(
        (total as i64 - elapsed as i64).unsigned_abs() < 1_000_000,
        "histogram covers elapsed time: {total} vs {elapsed}"
    );
    // A lone busy VM on 8 PCPUs should be nearly always fully online.
    assert!(acct.all_online_frac(m.now()) > 0.9);
}

#[test]
fn weight_proportion_equation_1() {
    let m = Machine::new(
        MachineConfig::default(),
        vec![
            VmSpec::new("a", 2, busy(2)).weight(256),
            VmSpec::new("b", 2, busy(2)).weight(128),
            VmSpec::new("c", 2, busy(2)).weight(128),
        ],
    );
    assert!((m.weight_proportion(0) - 0.5).abs() < 1e-12);
    assert!((m.weight_proportion(1) - 0.25).abs() < 1e-12);
    // Equation 2: |P| * omega / |C|.
    assert!((m.configured_online_rate(1) - 8.0 * 0.25 / 2.0).abs() < 1e-12);
}

#[test]
fn llc_aware_ganging_reduces_cross_socket_migrations() {
    // With an expensive cross-socket penalty, LLC-aware gang placement
    // must give the coscheduled VM at least as much useful progress.
    let run = |llc_aware: bool| {
        let cfg = MachineConfig {
            pcpus: 8,
            sockets: 2,
            cross_socket_warmup_us: 400,
            llc_aware,
            policy: CoschedPolicy::Adaptive,
            ..MachineConfig::default()
        };
        let lu = asman_workloads::NasSpec::new(
            asman_workloads::NasBenchmark::LU,
            asman_workloads::ProblemClass::S,
            4,
        )
        .build(7);
        let mut m = Machine::new(
            cfg,
            vec![
                VmSpec::new("noise", 8, busy(8)),
                VmSpec::new("guest", 4, Box::new(lu))
                    .observer(Box::new(RaiseOnce { fired: false })),
            ],
        );
        m.run_to_completion(clk().secs(120));
        (
            m.vm_kernel(1).stats().finished_at.expect("finished"),
            m.vm_kernel(1).stats().warmup_cycles,
        )
    };
    let (t_flat, w_flat) = run(false);
    let (t_llc, w_llc) = run(true);
    // LLC-aware placement should not lose time and should waste no more
    // cycles on warm-ups.
    assert!(
        t_llc <= t_flat + clk().ms(500),
        "LLC-aware must not regress: {:?} vs {:?}",
        t_llc,
        t_flat
    );
    assert!(
        w_llc <= w_flat,
        "LLC-aware must reduce warm-up waste: {:?} vs {:?}",
        w_llc,
        w_flat
    );
}

#[test]
fn socket_mapping_is_even() {
    // White-box via behaviour: with 2 sockets and cross-socket penalty 0
    // vs huge, run times diverge only if migrations cross sockets — and
    // the default (penalty == warmup) is socket-oblivious.
    let run = |cross: u64| {
        let cfg = MachineConfig {
            pcpus: 4,
            sockets: 2,
            cross_socket_warmup_us: cross,
            ..MachineConfig::default()
        };
        // A frequently-waking VM forces boost preemptions and migrations,
        // some of which cross the socket boundary.
        let waker = Box::new(
            ScriptProgram::homogeneous(
                "waker",
                4,
                vec![Op::Sleep(clk().ms(2)), Op::Compute(clk().us(200))],
            )
            .looping(),
        );
        let mut m = Machine::new(
            cfg,
            vec![
                VmSpec::new("busy", 4, busy(4)),
                VmSpec::new("waker", 4, waker),
            ],
        );
        m.run_until(clk().secs(1));
        m.vm_kernel(0).stats().warmup_cycles
    };
    let cheap = run(60);
    let dear = run(600);
    assert!(
        dear > cheap,
        "higher cross-socket penalty must show up: {cheap:?} vs {dear:?}"
    );
}
