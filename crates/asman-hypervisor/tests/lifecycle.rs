//! VM lifecycle integration tests: mid-run creation, destruction,
//! tombstone slot reuse with generation counters, and the state-lifetime
//! regressions the long-horizon soak flushed out (stale wakes into a
//! reused slot, stale scheduler-latency stamps, late telemetry arming).

use asman_hypervisor::{Machine, MachineConfig, VmSpec};
use asman_sim::{Clock, Cycles};
use asman_workloads::{Op, ScriptProgram};

fn clk() -> Clock {
    Clock::default()
}

fn busy(name: &str, threads: usize) -> Box<ScriptProgram> {
    Box::new(
        ScriptProgram::homogeneous(name, threads, vec![Op::Compute(clk().ms(1))]).looping(),
    )
}

/// A finite program: one compute burst, then done.
fn burst(name: &str, threads: usize, us: u64) -> Box<ScriptProgram> {
    Box::new(ScriptProgram::homogeneous(name, threads, vec![Op::Compute(
        clk().us(us),
    )]))
}

#[test]
fn created_vm_boots_runs_and_destroy_finalizes_counters() {
    let mut m = Machine::new(
        MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        },
        vec![VmSpec::new("resident", 1, busy("resident", 1))],
    );
    m.run_until(clk().ms(2));
    // Boot a finite VM mid-run, exactly as a cluster arrival would.
    let late = m.create_vm(VmSpec::new("late", 1, burst("late", 1, 500)), clk().ms(2));
    assert_eq!(m.vm_count(), 2);
    assert_eq!(m.active_vm_count(), 2);
    assert_eq!(m.vm_name(late), "late");
    m.run_until(clk().ms(10));
    let before = m.vm_counters(late);
    assert!(before.online > 0, "created VM must actually run");
    let ret = m.destroy_vm(late);
    // Destruction closes in-progress accounting segments, so the
    // retirement's counters are monotone over the last live capture.
    assert_eq!(ret.name, "late");
    assert_eq!(ret.vcpus, 1);
    assert!(ret.counters.online >= before.online);
    assert!(ret.finished, "the 500 us burst had long finished");
    assert!(m.vm_evacuated(late), "slot must be left as a tombstone");
    assert_eq!(m.active_vm_count(), 1);
    assert_eq!(m.vm_count(), 2, "slot stays behind for index stability");
    // The machine keeps running fine past the departure; the tombstone
    // reads as zeros and accrues nothing.
    m.run_until(clk().ms(20));
    assert_eq!(m.vm_counters(late), Default::default());
}

#[test]
fn slot_reuse_is_opt_in_and_bumps_the_generation() {
    let mut m = Machine::new(
        MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        },
        vec![
            VmSpec::new("a", 1, busy("a", 1)),
            VmSpec::new("b", 2, busy("b", 2)),
        ],
    );
    m.run_until(clk().ms(1));
    m.destroy_vm(0);
    // Reuse off (the default): arrivals append, tombstones stay.
    let appended = m.create_vm(VmSpec::new("c", 1, busy("c", 1)), clk().ms(1));
    assert_eq!(appended, 2, "default policy must append a fresh slot");
    assert_eq!(m.vm_generation(0), 0, "tombstone untouched");
    m.run_until(clk().ms(2));
    m.destroy_vm(appended);

    // Reuse on: a matching-VCPU-count arrival recycles the lowest
    // tombstone and bumps its generation; a mismatched one appends.
    m.enable_slot_reuse();
    let reused = m.create_vm(VmSpec::new("d", 1, busy("d", 1)), clk().ms(2));
    assert_eq!(reused, 0, "lowest-index matching tombstone wins");
    assert_eq!(m.vm_generation(0), 1, "reuse must bump the generation");
    assert!(!m.vm_evacuated(0));
    assert_eq!(m.vm_name(0), "d");
    let mismatched = m.create_vm(VmSpec::new("e", 2, busy("e", 2)), clk().ms(2));
    assert_eq!(mismatched, 3, "slot 2's tombstone has 1 VCPU, not 2");
    m.run_until(clk().ms(5));
    assert!(m.vm_counters(reused).online > 0, "reused slot must run");
}

/// Regression (generation guard): a wake armed for one incarnation of a
/// slot must never start the next occupant. The schedule below leaves a
/// wake for VM "b" (generation 1) in flight at 5 ms, then retires "b"
/// and boots "c" into the same slot (generation 2) with its own wake at
/// 20 ms. Pre-guard, the stale 5 ms wake dispatched "c" fifteen
/// simulated milliseconds early.
#[test]
fn stale_wake_never_starts_the_next_occupant_of_a_reused_slot() {
    let mut m = Machine::new(
        MachineConfig {
            pcpus: 1,
            ..MachineConfig::default()
        },
        vec![VmSpec::new("a", 1, busy("a", 1))],
    );
    m.enable_slot_reuse();
    m.run_until(clk().ms(1));
    m.destroy_vm(0);
    // "b" reuses the slot; its boot wake is scheduled for 5 ms.
    let b = m.create_vm(VmSpec::new("b", 1, busy("b", 1)), clk().ms(5));
    assert_eq!(b, 0);
    assert_eq!(m.vm_generation(0), 1);
    // Retire "b" before it ever starts: its 5 ms wake stays in flight.
    m.run_until(clk().ms(2));
    m.destroy_vm(b);
    let c = m.create_vm(VmSpec::new("c", 1, busy("c", 1)), clk().ms(20));
    assert_eq!(c, 0);
    assert_eq!(m.vm_generation(0), 2);
    // Run past the stale wake's delivery time but short of "c"'s boot.
    m.run_until(clk().ms(15));
    assert_eq!(
        m.vm_counters(c).online,
        0,
        "the generation-1 wake must not start the generation-2 occupant"
    );
    m.run_until(clk().ms(25));
    assert!(m.vm_counters(c).online > 0, "c's own wake still works");
}

/// Regression (stale latency stamps, the clear-on-extract fix): with
/// scheduler-latency telemetry on, a VCPU that is Runnable at extraction
/// carries a `preempt_at` stamp. If extraction (or tombstone reuse)
/// fails to clear it, the *next* occupant's first dispatch consumes the
/// stamp and records a preemption hold spanning the whole
/// destroy-to-boot gap — here at least 65 simulated milliseconds,
/// visible as an absurd histogram max.
#[test]
fn reused_slot_consumes_no_stale_latency_stamps() {
    let mut m = Machine::new(
        MachineConfig {
            pcpus: 1,
            ..MachineConfig::default()
        },
        // Two busy 1-VCPU VMs on one PCPU: at any instant one of them
        // is Runnable, freshly stamped by its last preemption.
        vec![
            VmSpec::new("a0", 1, busy("a0", 1)),
            VmSpec::new("a1", 1, busy("a1", 1)),
        ],
    );
    m.enable_sched_latency();
    m.enable_slot_reuse();
    // Past several 10 ms scheduling slots, so tick preemptions have
    // demoted each VM at least once: the currently-Runnable VM carries
    // an unconsumed `preempt_at` stamp from the most recent tick.
    m.run_until(clk().ms(35));
    m.destroy_vm(0);
    m.destroy_vm(1);
    // Reboot into BOTH slots, so whichever of a0/a1 was Runnable (and
    // stamped) at destruction gets its slot reused.
    let b = m.create_vm(VmSpec::new("b", 1, busy("b", 1)), clk().ms(100));
    let c = m.create_vm(VmSpec::new("c", 1, busy("c", 1)), clk().ms(101));
    assert_eq!((b, c), (0, 1), "reboots must recycle both tombstones");
    m.run_until(clk().ms(130));
    let lat = m.sched_latency().unwrap();
    // A legitimate hold on this machine is one 10 ms slot; a stale
    // stamp spans destroy (35 ms) to boot (100 ms). Split them at 50 ms.
    let gap = clk().ms(50).as_u64() as f64;
    for (hist, name) in [
        (&lat.preempt_hold, "preempt_hold"),
        (&lat.wake_to_dispatch, "wake_to_dispatch"),
    ] {
        if let Some(max) = hist.max() {
            assert!(
                max < gap,
                "{name} max {max} spans the destroy-to-boot gap: a stale \
                 stamp leaked into the reused slot"
            );
        }
    }
    // Sanity: "b" did run and produced genuine samples.
    assert!(lat.wake_to_dispatch.count() > 0);
}

/// A VM created after `enable_sched_latency` / `enable_flight` ran must
/// still get guest-side telemetry: machine-wide enablement is a
/// standing spec, not a one-shot sweep over the residents of that
/// instant.
#[test]
fn late_created_vm_gets_guest_telemetry_armed() {
    let mut m = Machine::new(
        MachineConfig {
            pcpus: 2,
            ..MachineConfig::default()
        },
        vec![VmSpec::new("a", 1, busy("a", 1))],
    );
    m.enable_sched_latency();
    m.enable_flight(asman_sim::CatMask::ALL, 64);
    m.run_until(clk().ms(1));
    let late = m.create_vm(VmSpec::new("late", 1, busy("late", 1)), clk().ms(1));
    assert!(
        m.vm_kernel(late).stats().spin_episodes().is_some(),
        "spin-episode telemetry must be armed on late arrivals"
    );
    assert!(
        m.vm_kernel(late).flight().is_enabled(),
        "flight recording must be armed on late arrivals"
    );
    let _ = Cycles(0); // keep the import used even if assertions change
    m.run_until(clk().ms(3));
}
