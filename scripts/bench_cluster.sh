#!/usr/bin/env bash
# Cluster scaling measurement: hosts x jobs grid of the parallel epoch
# driver (`repro cluster --bench`).
#
# Builds the repro binary tuned for the local CPU (in its own target
# directory, so the portable ./target build is left alone), runs the
# bench grid on the uniform scaling scenario, and writes
# BENCH_cluster.json into OUT_DIR (default: the repository root). Every
# cell reports epochs/sec and guest-events/sec from the median of three
# timed runs after a warmup run; the bench itself asserts that every
# jobs count in a hosts row reproduces the jobs=1 report digest bit for
# bit, so a speedup can never come from computing something different.
#
#   scripts/bench_cluster.sh [OUT_DIR]
#   scripts/bench_cluster.sh --smoke [OUT_DIR]
#
# --smoke runs a single small row (4 hosts, jobs 1 and 4, 3 epochs) —
# a few hundred milliseconds — for CI: it exercises the pool, the
# digest cross-check, and the artifact writer without occupying a
# runner for the full grid.
#
# No criterion, no network: the measurement is plain wall-clock around
# Cluster::run. The simulation is bit-identical with and without
# -Ctarget-cpu=native; the flag only changes how fast it runs.
set -euo pipefail

cd "$(dirname "$0")/.."

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi
out_dir="${1:-.}"

export RUSTFLAGS="${BENCH_RUSTFLAGS:--Ctarget-cpu=native}"
export CARGO_TARGET_DIR=target-bench
cargo build --release -p asman-report --bin repro

if [[ "$smoke" == 1 ]]; then
  ./target-bench/release/repro cluster --bench \
    --bench-hosts 4 --bench-jobs 1,4 --epochs 3 --json "$out_dir"
else
  ./target-bench/release/repro cluster --bench --json "$out_dir"
fi
