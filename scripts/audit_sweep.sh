#!/usr/bin/env bash
# Differential oracle audit sweep.
#
# Runs the optimized engine against the naive oracle over a randomized
# scenario grid (schedulers x workloads x PCPU counts x cap modes x
# tracing on/off) and fails on the first bit-level divergence, quoting
# the first mismatching event with context. Builds with the `audit`
# feature, so the in-engine invariant auditor (shadow credit ledger,
# heap/runqueue/mask checkpoints, FIFO lock-grant recheck) also runs at
# every accounting slot of every cell, and the engine test suite's
# injected credit-burn mutation test proves the auditor actually bites.
#
#   scripts/audit_sweep.sh [CELLS] [JOBS] [OUT_DIR]
#
# CELLS defaults to 200 (the acceptance grid), JOBS to all cores, and
# OUT_DIR (for AUDIT_diff.json) to ./audit-out.
set -euo pipefail

cd "$(dirname "$0")/.."
cells="${1:-200}"
jobs="${2:-0}"
out_dir="${3:-audit-out}"

cargo test -q -p asman-hypervisor --features audit
cargo run --release -p asman-report --features audit --bin repro -- \
    audit --cells "$cells" --jobs "$jobs" --json "$out_dir"
