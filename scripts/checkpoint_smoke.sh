#!/usr/bin/env bash
# Checkpoint/restore + bisection smoke (`repro soak --checkpoint-every`,
# `repro soak --resume`, `repro bisect`).
#
# Drives the canonical churned soak with periodic checkpoints, then
# simulates a mid-run kill by restarting from the halfway checkpoint —
# under a *different* worker count — and demands the resumed run
# reproduce the straight-through run exactly: stdout byte-identical,
# every artifact in the output directory (report JSON and re-emitted
# checkpoints) byte-identical under `diff -r`, and the golden digest
# pin unchanged. Every checkpoint file is schema-checked, and the
# divergence bisector is exercised both ways: the negative twin
# (identical sides) must exit 0, and a canned mutation must exit 1
# naming the exact first divergent epoch.
#
#   scripts/checkpoint_smoke.sh [OUT_DIR]   2k-epoch smoke (CI-sized)
#
# OUT_DIR (default ckpt-out) receives the straight run's artifacts;
# the resumed run writes OUT_DIR-resumed, which must diff clean.
set -euo pipefail

cd "$(dirname "$0")/.."

out_dir="${1:-ckpt-out}"

# Same canonical scenario the soak smoke pins, plus checkpoints.
churn="rand:42:5"
epochs=2000
every=500
resume_from="CKPT_001000.json"
golden="2c0cce1a2122726e"

cargo build --release -p asman-report --bin repro

rm -rf "$out_dir" "$out_dir-resumed"
./target/release/repro soak --epochs "$epochs" --churn "$churn" --jobs 1 \
  --checkpoint-every "$every" --json "$out_dir" -q | tee "$out_dir.txt"

# Every checkpoint the straight run wrote passes the schema check.
python3 scripts/check_trace.py --ckpt "$out_dir"/CKPT_*.json

# "Kill" the run at the halfway checkpoint and resume from the file —
# under jobs=4 where the straight run used jobs=1. The resumed run
# replays to the boundary, verifies the replay against the artifact,
# applies its state, and finishes the horizon.
./target/release/repro soak --resume "$out_dir/$resume_from" --jobs 4 \
  --checkpoint-every "$every" --json "$out_dir-resumed" -q | tee "$out_dir-resumed.txt"

# Bit-identity: the resumed run's summary and every artifact match the
# uninterrupted run.
diff "$out_dir.txt" "$out_dir-resumed.txt"
diff -r "$out_dir" "$out_dir-resumed"

# Golden pin: resuming must not drift the canonical seed's digest.
actual=$(sed -n 's/^digest: //p' "$out_dir-resumed.txt")
if [[ "$actual" != "$golden" ]]; then
  echo "resumed soak digest drifted for churn $churn over $epochs epochs:" >&2
  echo "  pinned $golden, got $actual" >&2
  echo "if the change is intentional, re-pin golden in scripts/checkpoint_smoke.sh" >&2
  exit 1
fi

# Bisection, negative twin: identical sides are bit-identical, exit 0.
./target/release/repro bisect --epochs 8 --policy vcrd-aware -q \
  > "$out_dir-bisect-twin.txt"
grep -q "bit-identical" "$out_dir-bisect-twin.txt"

# Bisection, injected mutation: side B undercounts dirty pages; the
# bisector must exit 1 and pinpoint the first divergent epoch.
rc=0
./target/release/repro bisect --epochs 8 --policy vcrd-aware \
  --b-mutate dirty-undercount -q > "$out_dir-bisect.txt" || rc=$?
if [[ "$rc" != 1 ]]; then
  echo "mutated bisect should exit 1 (divergence confirmed), got $rc" >&2
  exit 1
fi
grep "first divergent epoch:" "$out_dir-bisect.txt"

echo "checkpoint smoke ok: $epochs epochs, resumed from $resume_from" \
  "(jobs 1 -> 4), digest $actual, bisect pinpointed the mutation"
