#!/usr/bin/env bash
# Checkpoint/restore + bisection smoke (`repro soak --checkpoint-every`,
# `repro soak --resume`, `repro bisect`).
#
# Drives the canonical churned soak with periodic checkpoints, then
# simulates a mid-run kill by restarting from the halfway checkpoint —
# under a *different* worker count — and demands the resumed run
# reproduce the straight-through run exactly: stdout byte-identical,
# every artifact in the output directory (report JSON and re-emitted
# checkpoints) byte-identical under `diff -r`, and the golden digest
# pin unchanged. Every checkpoint file is schema-checked, and the
# divergence bisector is exercised both ways: the negative twin
# (identical sides) must exit 0, and a canned mutation must exit 1
# naming the exact first divergent epoch.
#
#   scripts/checkpoint_smoke.sh [OUT_DIR]   2k-epoch smoke (CI-sized)
#
# OUT_DIR (default ckpt-out) receives the straight run's artifacts;
# the resumed run writes OUT_DIR-resumed, which must diff clean.
set -euo pipefail

cd "$(dirname "$0")/.."

out_dir="${1:-ckpt-out}"

# Same canonical scenario the soak smoke pins, plus checkpoints.
churn="rand:42:5"
epochs=2000
every=500
resume_from="CKPT_000001000.json"
golden="2c0cce1a2122726e"

cargo build --release -p asman-report --bin repro

rm -rf "$out_dir" "$out_dir-resumed"
./target/release/repro soak --epochs "$epochs" --churn "$churn" --jobs 1 \
  --checkpoint-every "$every" --json "$out_dir" -q | tee "$out_dir.txt"

# Every checkpoint the straight run wrote passes the schema check.
python3 scripts/check_trace.py --ckpt "$out_dir"/CKPT_*.json

# "Kill" the run at the halfway checkpoint and resume from the file —
# under jobs=4 where the straight run used jobs=1. The resumed run
# replays to the boundary, verifies the replay against the artifact,
# applies its state, and finishes the horizon.
./target/release/repro soak --resume "$out_dir/$resume_from" --jobs 4 \
  --checkpoint-every "$every" --json "$out_dir-resumed" -q | tee "$out_dir-resumed.txt"

# Bit-identity: the resumed run's summary and every artifact match the
# uninterrupted run.
diff "$out_dir.txt" "$out_dir-resumed.txt"
diff -r "$out_dir" "$out_dir-resumed"

# Golden pin: resuming must not drift the canonical seed's digest.
actual=$(sed -n 's/^digest: //p' "$out_dir-resumed.txt")
if [[ "$actual" != "$golden" ]]; then
  echo "resumed soak digest drifted for churn $churn over $epochs epochs:" >&2
  echo "  pinned $golden, got $actual" >&2
  echo "if the change is intentional, re-pin golden in scripts/checkpoint_smoke.sh" >&2
  exit 1
fi

# Version-1 artifact load: a checkpoint written before the multi-move
# planner (no config.max_moves, pending as a single object or null)
# must still resume. Synthesize one from the halfway v2 artifact — the
# canonical soak carries no faults, so the boundary holds at most one
# live chain and the collapse is lossless — then resume from it and
# demand the same bit-identical finish.
python3 - "$out_dir/$resume_from" "$out_dir-v1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["version"] = 1
del doc["config"]["max_moves"]
p = doc["state"]["pending"]
assert len(p) <= 1, f"v1 collapse would drop chains: {p}"
doc["state"]["pending"] = p[0] if p else None
json.dump(doc, open(sys.argv[2], "w"), indent=2)
EOF
python3 scripts/check_trace.py --ckpt "$out_dir-v1.json"
rm -rf "$out_dir-v1res"
./target/release/repro soak --resume "$out_dir-v1.json" --jobs 4 \
  --checkpoint-every "$every" --json "$out_dir-v1res" -q | tee "$out_dir-v1res.txt"
diff "$out_dir.txt" "$out_dir-v1res.txt"
diff -r "$out_dir" "$out_dir-v1res"

# Multi-move leg: the same churned soak under --max-moves 4. The run's
# own jobs-1-vs-4 cross-check prefix covers digest parity; the resumed
# run (from a v2 checkpoint whose config carries max_moves: 4) must
# still finish byte-identical under the other worker count.
mm_epochs=1000
mm_every=250
rm -rf "$out_dir-mm4" "$out_dir-mm4res"
./target/release/repro soak --epochs "$mm_epochs" --churn "$churn" --jobs 1 \
  --max-moves 4 --checkpoint-every "$mm_every" --json "$out_dir-mm4" -q \
  | tee "$out_dir-mm4.txt"
grep -q "1 and 4 workers bit-identical" "$out_dir-mm4.txt"
python3 scripts/check_trace.py --ckpt "$out_dir-mm4"/CKPT_*.json
grep -q '"max_moves": 4' "$out_dir-mm4/CKPT_000000500.json"
./target/release/repro soak --resume "$out_dir-mm4/CKPT_000000500.json" --jobs 4 \
  --checkpoint-every "$mm_every" --json "$out_dir-mm4res" -q | tee "$out_dir-mm4res.txt"
diff "$out_dir-mm4.txt" "$out_dir-mm4res.txt"
diff -r "$out_dir-mm4" "$out_dir-mm4res"

# Bisection, negative twin: identical sides are bit-identical, exit 0.
./target/release/repro bisect --epochs 8 --policy vcrd-aware -q \
  > "$out_dir-bisect-twin.txt"
grep -q "bit-identical" "$out_dir-bisect-twin.txt"

# Bisection, injected mutation: side B undercounts dirty pages; the
# bisector must exit 1 and pinpoint the first divergent epoch.
rc=0
./target/release/repro bisect --epochs 8 --policy vcrd-aware \
  --b-mutate dirty-undercount -q > "$out_dir-bisect.txt" || rc=$?
if [[ "$rc" != 1 ]]; then
  echo "mutated bisect should exit 1 (divergence confirmed), got $rc" >&2
  exit 1
fi
grep "first divergent epoch:" "$out_dir-bisect.txt"

echo "checkpoint smoke ok: $epochs epochs, resumed from $resume_from" \
  "(jobs 1 -> 4), digest $actual, bisect pinpointed the mutation"
