#!/usr/bin/env bash
# Long-horizon soak with VM churn (`repro soak`).
#
# Drives the consolidation cluster for a horizon orders of magnitude
# past the experiment targets, with a seed-generated arrival/departure
# plan layered on top. The target itself asserts the bounded-memory
# invariant at every audit checkpoint (host slot tables, series-ring
# fill, pending retry chains) and cross-checks a jobs-1-vs-4 prefix;
# this script adds full artifact parity between two complete runs under
# different worker counts, plus a golden digest pin for the canonical
# churn seed so a silent behavior change fails CI instead of drifting.
#
#   scripts/soak.sh [OUT_DIR]           100k-epoch soak (about 20 s)
#   scripts/soak.sh --smoke [OUT_DIR]   2k-epoch soak for CI
#
# OUT_DIR (default soak-out) receives SOAK_report.json from the jobs=1
# run; the jobs=4 artifacts land in OUT_DIR-j4 and must diff clean.
set -euo pipefail

cd "$(dirname "$0")/.."

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
  smoke=1
  shift
fi
out_dir="${1:-soak-out}"

# The canonical churn seed: 5% arrival + 5% departure chance per epoch.
churn="rand:42:5"
if [[ "$smoke" == 1 ]]; then
  epochs=2000
  golden="2c0cce1a2122726e"
else
  epochs=100000
  golden="43e59846973ed48b"
fi

cargo build --release -p asman-report --bin repro

run() { # run JOBS OUT_DIR LOG
  ./target/release/repro soak --epochs "$epochs" --churn "$churn" \
    --jobs "$1" --json "$2" -q | tee "$3"
}

run 1 "$out_dir" "$out_dir-j1.txt"
run 4 "$out_dir-j4" "$out_dir-j4.txt"

# Worker-count independence: rendered summary and serialized artifact
# must both be byte-identical.
diff "$out_dir-j1.txt" "$out_dir-j4.txt"
diff -r "$out_dir" "$out_dir-j4"

# Golden pin: the canonical seed's digest is part of the repo contract.
actual=$(sed -n 's/^digest: //p' "$out_dir-j1.txt")
if [[ "$actual" != "$golden" ]]; then
  echo "soak digest drifted for churn $churn over $epochs epochs:" >&2
  echo "  pinned $golden, got $actual" >&2
  echo "if the change is intentional, re-pin golden in scripts/soak.sh" >&2
  exit 1
fi
echo "soak ok: $epochs epochs, digest $actual, jobs 1 vs 4 identical"
