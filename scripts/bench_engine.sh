#!/usr/bin/env bash
# Fixed-seed engine throughput measurement.
#
# Builds the repro binary tuned for the local CPU (in its own target
# directory, so the portable ./target build is left alone), runs the
# `repro perf` subcommand, and writes BENCH_engine.json into OUT_DIR
# (default: the repository root). Each scheduler row records
# events_per_sec (flight recorder disabled — the tier-1 number),
# gated_events_per_sec / gated_overhead_pct (recorder armed with an
# empty mask: the cost of tracing compiled in but recording nothing,
# held under 5%), and traced_events_per_sec / tracing_overhead_pct
# (all categories enabled), so tracing-cost regressions show up in the
# artifact.
#
#   scripts/bench_engine.sh [OUT_DIR]
#
# No criterion, no network: the measurement is plain wall-clock around
# the deterministic event loop (see Machine::perf()), so the only
# requirements are the Rust toolchain and a quiet machine. The simulation
# itself is bit-identical with and without -Ctarget-cpu=native; the flag
# only changes how fast it runs.
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-.}"

export RUSTFLAGS="${BENCH_RUSTFLAGS:--Ctarget-cpu=native}"
export CARGO_TARGET_DIR=target-bench
cargo build --release -p asman-report --bin repro

./target-bench/release/repro perf --json "$out_dir"
