#!/usr/bin/env python3
"""Validate flight-recorder Chrome trace JSON (stdlib only).

    scripts/check_trace.py TRACE.json [TRACE.json ...]

Checks the structural contract the Perfetto/Chrome trace-event viewer
relies on, so CI catches exporter regressions without a browser:

* top level is an object with a non-empty ``traceEvents`` list and a
  ``displayTimeUnit``;
* every event has a string ``name``, a known phase (``X`` complete span,
  ``i`` instant, ``M`` metadata) and integer ``pid``/``tid``;
* spans carry non-negative ``ts`` and ``dur``; instants carry ``ts``;
* metadata events are ``process_name``/``thread_name`` with a string
  ``args.name``;
* at least one metadata event and one span are present, and every
  (pid, tid) used by a span or instant has a thread/process name.

Exits non-zero with a message on the first violation.
"""

import json
import sys

PHASES = {"X", "i", "M"}
META_NAMES = {"process_name", "thread_name"}


def fail(path, i, msg):
    sys.exit(f"{path}: traceEvents[{i}]: {msg}")


def check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        sys.exit(f"{path}: top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"{path}: traceEvents must be a non-empty list")
    if not isinstance(doc.get("displayTimeUnit"), str):
        sys.exit(f"{path}: displayTimeUnit must be a string")

    named = set()  # (pid, tid) rows with a thread_name, pids with process_name
    spans = metas = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, i, "event must be an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, i, "missing event name")
        ph = ev.get("ph")
        if ph not in PHASES:
            fail(path, i, f"unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int) or ev["pid"] < 0:
            fail(path, i, "pid must be a non-negative integer")
        if ph != "M" or "tid" in ev:
            if not isinstance(ev.get("tid", 0), int) or ev.get("tid", 0) < 0:
                fail(path, i, "tid must be a non-negative integer")
        if ph == "M":
            metas += 1
            if ev["name"] not in META_NAMES:
                fail(path, i, f"unknown metadata record {ev['name']!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                fail(path, i, "metadata args.name must be a string")
            if ev["name"] == "process_name":
                named.add(ev["pid"])
            else:
                named.add((ev["pid"], ev["tid"]))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, i, "ts must be a non-negative number")
        if ph == "X":
            spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, i, "dur must be a non-negative number")
        row = (ev["pid"], ev["tid"])
        if row not in named and ev["pid"] not in named:
            fail(path, i, f"row pid={ev['pid']} tid={ev['tid']} has no name metadata")
    if metas == 0:
        sys.exit(f"{path}: no metadata events")
    if spans == 0:
        sys.exit(f"{path}: no complete spans")
    print(f"ok: {path}: {len(events)} events ({spans} spans, {metas} metadata)")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    for path in argv[1:]:
        check(path)


if __name__ == "__main__":
    main(sys.argv)
