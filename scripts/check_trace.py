#!/usr/bin/env python3
"""Validate telemetry artifacts (stdlib only).

    scripts/check_trace.py TRACE.json [TRACE.json ...]
    scripts/check_trace.py --series CLUSTER_series_P.json [...]
    scripts/check_trace.py --spans [--max-overlap N] CLUSTER_flight_P.json [...]
    scripts/check_trace.py --ckpt CKPT_000000500.json [...]

Default mode checks the structural contract the Perfetto/Chrome
trace-event viewer relies on, so CI catches exporter regressions
without a browser:

* top level is an object with a non-empty ``traceEvents`` list and a
  ``displayTimeUnit``;
* every event has a string ``name``, a known phase (``X`` complete span,
  ``i`` instant, ``M`` metadata) and integer ``pid``/``tid``;
* spans carry non-negative ``ts`` and ``dur``; instants carry ``ts``;
* metadata events are ``process_name``/``thread_name`` with a string
  ``args.name``;
* at least one metadata event and one span are present, and every
  (pid, tid) used by a span or instant has a thread/process name.

``--series`` mode validates the per-epoch telemetry series artifact
(`repro series --json DIR`): epochs are contiguous from 0, every
sample carries the full per-host schema (host indices in order, all
counters non-negative), anomaly/latency rows are well-formed, and the
``migrations_in_flight`` count obeys the chain algebra — every live
chain, committed retry and give-up consumed at least one abort, and
the count can only rise by as many chains as aborted since the
previous sample.

``--spans`` mode validates causal migration-span pairing in the
host-tagged flight streams (`repro cluster --json DIR`): every
``MigratePrepare`` of a span chain is closed by exactly one
``MigrateCommit`` or ``MigrateAbort``, attempts count up from 1, a
commit is final, and retries follow an abort. It also measures span
*overlap* — the peak number of chains simultaneously in flight
(a chain is open from its first prepare until its commit; an
uncommitted chain stays open to the end of the stream) —
``--max-overlap N`` fails the check if the peak exceeds the driver's
move budget. When the sibling ``CLUSTER_series_<policy>.json`` sits
next to the flight file, every sample's ``migrations_in_flight`` is
cross-validated against the open prepare/close span pairs.

``--ckpt`` mode validates checkpoint artifacts (`repro soak
--checkpoint-every N --json DIR`), versions 1 and 2: kind/version
header, the embedded run config, the full control-state image (health
per host, the per-VM schema, the pending retry — one optional chain in
v1, the ordered chain set bounded by ``config.max_moves`` in v2),
per-host machine fingerprints, and the cross-field invariants (epochs
agree, hosts/health/fingerprint lengths agree, indices in range, the
6- or 9-digit file name matches the epoch).

Exits non-zero with a message on the first violation.
"""

import json
import sys

PHASES = {"X", "i", "M"}
META_NAMES = {"process_name", "thread_name"}


def fail(path, i, msg):
    sys.exit(f"{path}: traceEvents[{i}]: {msg}")


def check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        sys.exit(f"{path}: top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"{path}: traceEvents must be a non-empty list")
    if not isinstance(doc.get("displayTimeUnit"), str):
        sys.exit(f"{path}: displayTimeUnit must be a string")

    named = set()  # (pid, tid) rows with a thread_name, pids with process_name
    spans = metas = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, i, "event must be an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, i, "missing event name")
        ph = ev.get("ph")
        if ph not in PHASES:
            fail(path, i, f"unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int) or ev["pid"] < 0:
            fail(path, i, "pid must be a non-negative integer")
        if ph != "M" or "tid" in ev:
            if not isinstance(ev.get("tid", 0), int) or ev.get("tid", 0) < 0:
                fail(path, i, "tid must be a non-negative integer")
        if ph == "M":
            metas += 1
            if ev["name"] not in META_NAMES:
                fail(path, i, f"unknown metadata record {ev['name']!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                fail(path, i, "metadata args.name must be a string")
            if ev["name"] == "process_name":
                named.add(ev["pid"])
            else:
                named.add((ev["pid"], ev["tid"]))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, i, "ts must be a non-negative number")
        if ph == "X":
            spans += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(path, i, "dur must be a non-negative number")
        row = (ev["pid"], ev["tid"])
        if row not in named and ev["pid"] not in named:
            fail(path, i, f"row pid={ev['pid']} tid={ev['tid']} has no name metadata")
    if metas == 0:
        sys.exit(f"{path}: no metadata events")
    if spans == 0:
        sys.exit(f"{path}: no complete spans")
    print(f"ok: {path}: {len(events)} events ({spans} spans, {metas} metadata)")


HOST_FIELDS = {
    "host": int,
    "resident_vms": int,
    "resident_vcpus": int,
    "runnable_vcpus": int,
    "online_delta": int,
    "spin_delta": int,
    "vcrd_high_delta": int,
    "derate_pct": int,
    "crashed": bool,
}

SAMPLE_FIELDS = {
    "epoch": int,
    "migrations_in_flight": int,
    "moves_planned": int,
    "moves_denied_conflict": int,
    "migrations": int,
    "aborts": int,
    "retries_committed": int,
    "gave_up": int,
    "evacuations": int,
}


def check_series(path):
    """Validate one ``CLUSTER_series_<policy>.json`` artifact."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        sys.exit(f"{path}: top level must be an object")
    for key in ("policy", "sampled_epochs", "dropped_epochs", "samples",
                "anomalies", "latency"):
        if key not in doc:
            sys.exit(f"{path}: missing key {key!r}")
    samples = doc["samples"]
    if not isinstance(samples, list) or not samples:
        sys.exit(f"{path}: samples must be a non-empty list")
    n_hosts = None
    for i, s in enumerate(samples):
        for field, ty in SAMPLE_FIELDS.items():
            v = s.get(field)
            if not isinstance(v, ty) or isinstance(v, bool) or v < 0:
                sys.exit(f"{path}: samples[{i}].{field} must be a non-negative {ty.__name__}, got {v!r}")
        # The ring drops oldest-first, so epochs are contiguous and end
        # at sampled_epochs - 1 even when early epochs were evicted.
        want = doc["sampled_epochs"] - len(samples) + i
        if s["epoch"] != want:
            sys.exit(f"{path}: samples[{i}].epoch = {s['epoch']}, want {want} (contiguous)")
        hosts = s.get("hosts")
        if not isinstance(hosts, list) or not hosts:
            sys.exit(f"{path}: samples[{i}].hosts must be a non-empty list")
        if n_hosts is None:
            n_hosts = len(hosts)
        if len(hosts) != n_hosts:
            sys.exit(f"{path}: samples[{i}] has {len(hosts)} hosts, first sample had {n_hosts}")
        for h, row in enumerate(hosts):
            for field, ty in HOST_FIELDS.items():
                v = row.get(field)
                if ty is bool:
                    ok = isinstance(v, bool)
                else:
                    ok = isinstance(v, int) and not isinstance(v, bool) and v >= 0
                if not ok:
                    sys.exit(f"{path}: samples[{i}].hosts[{h}].{field} malformed: {v!r}")
            if row["host"] != h:
                sys.exit(f"{path}: samples[{i}].hosts[{h}] reports host {row['host']}")
        # Chain algebra for the in-flight count: a chain only becomes
        # pending through an abort, and every closure (retry-commit or
        # give-up) consumed at least one abort of its own — so live +
        # closed chains can never outnumber the cumulative aborts, and
        # the count can only rise by as many chains as aborted since
        # the previous sample.
        live = s["migrations_in_flight"]
        if live + s["retries_committed"] + s["gave_up"] > s["aborts"]:
            sys.exit(f"{path}: samples[{i}]: {live} in flight + "
                     f"{s['retries_committed']} retry-commits + {s['gave_up']} "
                     f"give-ups exceed {s['aborts']} cumulative aborts")
        if i > 0:
            prev = samples[i - 1]
            rise = live - prev["migrations_in_flight"]
            if rise > s["aborts"] - prev["aborts"]:
                sys.exit(f"{path}: samples[{i}]: in-flight rose by {rise} with "
                         f"only {s['aborts'] - prev['aborts']} new aborts")
    for i, a in enumerate(doc["anomalies"]):
        for field in ("epoch", "host", "metric", "value", "mean", "sigma"):
            if field not in a:
                sys.exit(f"{path}: anomalies[{i}] missing {field!r}")
        if not 0 <= a["host"] < n_hosts:
            sys.exit(f"{path}: anomalies[{i}] names host {a['host']} of {n_hosts}")
    lat = doc["latency"]
    if not isinstance(lat, list) or len(lat) != n_hosts:
        sys.exit(f"{path}: latency must list all {n_hosts} hosts")
    for h, row in enumerate(lat):
        if row.get("host") != h:
            sys.exit(f"{path}: latency[{h}] reports host {row.get('host')!r}")
        for field in ("wake_count", "wake_p50", "wake_p99",
                      "preempt_count", "preempt_p50", "preempt_p99"):
            if not isinstance(row.get(field), (int, float)):
                sys.exit(f"{path}: latency[{h}].{field} must be numeric")
    print(f"ok: {path}: {len(samples)} samples x {n_hosts} hosts, "
          f"{len(doc['anomalies'])} anomalies")


def check_spans(path, max_overlap=None):
    """Validate migration-span pairing in ``CLUSTER_flight_<policy>.json``."""
    with open(path, encoding="utf-8") as f:
        streams = json.load(f)
    if not isinstance(streams, list):
        sys.exit(f"{path}: top level must be a list of host streams")
    merged = []
    for s in streams:
        if not isinstance(s, dict) or "host" not in s or "events" not in s:
            sys.exit(f"{path}: each stream must be {{host, events}}")
        merged.extend(s["events"])
    merged.sort(key=lambda e: e["t"])
    spans = {}  # span id -> list of (t, kind, attempt)
    for e in merged:
        (kind, payload), = e["ev"].items() if isinstance(e["ev"], dict) else [(e["ev"], {})]
        if kind in ("MigratePrepare", "MigrateCommit", "MigrateAbort", "MigrateRetry"):
            spans.setdefault(payload["span"], []).append((e["t"], kind, payload.get("attempt")))
    unclosed = 0
    intervals = []  # (open t, close t or None) per chain
    for span, tevs in sorted(spans.items()):
        evs = [(k, a) for _, k, a in tevs]
        prepares = [a for k, a in evs if k == "MigratePrepare"]
        commits = [a for k, a in evs if k == "MigrateCommit"]
        aborts = [a for k, a in evs if k == "MigrateAbort"]
        retries = [a for k, a in evs if k == "MigrateRetry"]
        if prepares != list(range(1, len(prepares) + 1)):
            sys.exit(f"{path}: span {span} attempts not 1..n in order: {prepares}")
        if len(commits) > 1:
            sys.exit(f"{path}: span {span} committed {len(commits)} times")
        if len(commits) + len(aborts) != len(prepares):
            sys.exit(f"{path}: span {span}: {len(prepares)} prepares but "
                     f"{len(commits)} commits + {len(aborts)} aborts")
        if commits and evs[-1][0] != "MigrateCommit":
            sys.exit(f"{path}: span {span}: commit is not the final event")
        for a in retries:
            if a < 2 or (a - 1) not in aborts:
                sys.exit(f"{path}: span {span}: retry attempt {a} without abort of attempt {a - 1}")
        # A chain is in flight from its first prepare until its commit;
        # an uncommitted chain (still retrying, gave up, or abandoned)
        # stays open to the end of the stream.
        intervals.append((tevs[0][0], tevs[-1][0] if commits else None))
        unclosed += not commits
    # Peak overlap: the most chains simultaneously in flight. Closes at
    # time t release after opens at t are admitted, so chains that hand
    # over an epoch boundary's budget slot still count as concurrent —
    # the peak is a faithful upper bound on the driver's live-chain set.
    marks = []
    for start, end in intervals:
        marks.append((start, 1))
        if end is not None:
            marks.append((end, -1))
    marks.sort(key=lambda m: (m[0], -m[1]))
    peak = live = 0
    for _, d in marks:
        live += d
        peak = max(peak, live)
    if max_overlap is not None and peak > max_overlap:
        sys.exit(f"{path}: {peak} chains in flight at once exceeds "
                 f"--max-overlap {max_overlap}")
    # Cross-validate the series sampler's migrations_in_flight against
    # the open prepare/close pairs when the same run's series artifact
    # sits next to the flight file.
    import os
    sib = os.path.join(os.path.dirname(path) or ".",
                       os.path.basename(path).replace("flight", "series"))
    crossed = ""
    if "flight" in os.path.basename(path) and os.path.exists(sib):
        with open(sib, encoding="utf-8") as f:
            series = json.load(f)
        samples = series.get("samples", [])
        for i, s in enumerate(samples):
            if s["migrations_in_flight"] > peak:
                sys.exit(f"{sib}: samples[{i}] reports {s['migrations_in_flight']} "
                         f"in flight but the flight stream never has more than "
                         f"{peak} open span chains")
        if samples:
            last = samples[-1]
            if last["migrations_in_flight"] + last["gave_up"] > unclosed:
                sys.exit(f"{sib}: final sample reports "
                         f"{last['migrations_in_flight']} live + {last['gave_up']} "
                         f"given-up chains but only {unclosed} span chains are "
                         f"uncommitted in the flight stream")
        crossed = f", in-flight cross-checked against {os.path.basename(sib)}"
    print(f"ok: {path}: {len(spans)} migration span(s), all prepare/close paired, "
          f"peak overlap {peak}{crossed}")


CKPT_VERSIONS = {1, 2}
HEALTH = {"Healthy", "Derated", "Crashed"}


def _nonneg(path, where, obj, field):
    v = obj.get(field)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        sys.exit(f"{path}: {where}.{field} must be a non-negative integer, got {v!r}")
    return v


def check_ckpt(path):
    """Validate a ``CKPT_<epoch>.json`` checkpoint artifact."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        sys.exit(f"{path}: top level must be an object")
    if doc.get("kind") != "asman-ckpt":
        sys.exit(f"{path}: kind is {doc.get('kind')!r}, not a checkpoint")
    version = doc.get("version")
    if version not in CKPT_VERSIONS:
        sys.exit(f"{path}: version {version!r} unsupported "
                 f"(this checker reads versions {min(CKPT_VERSIONS)}..={max(CKPT_VERSIONS)})")
    for field in ("config", "epoch", "state", "hosts", "digest"):
        if field not in doc:
            sys.exit(f"{path}: missing {field!r}")

    cfg = doc["config"]
    if not isinstance(cfg, dict):
        sys.exit(f"{path}: config must be an object")
    required = ["hosts", "gangs", "pcpus", "seed", "epoch_ms", "epochs",
                "policy", "cooldown_epochs", "retry_cap", "audit_every",
                "model", "faults", "churn", "slot_reuse", "series_capacity"]
    if version >= 2:
        required.append("max_moves")
    for field in required:
        if field not in cfg:
            sys.exit(f"{path}: config missing {field!r}")
    # v1 artifacts predate the move budget; absent means 1.
    max_moves = _nonneg(path, "config", cfg, "max_moves") if "max_moves" in cfg else 1
    if max_moves < 1:
        sys.exit(f"{path}: config.max_moves must be at least 1, got {max_moves}")
    n_hosts = _nonneg(path, "config", cfg, "hosts")
    if n_hosts < 2:
        sys.exit(f"{path}: config.hosts must be at least 2, got {n_hosts}")
    horizon = _nonneg(path, "config", cfg, "epochs")
    if not isinstance(cfg["policy"], str):
        sys.exit(f"{path}: config.policy must be a string label")
    for field in ("base_pages", "dirty_pages_per_mcycle",
                  "copy_cycles_per_page", "downtime_base"):
        _nonneg(path, "config.model", cfg["model"], field)
    for plan in ("faults", "churn"):
        if not isinstance(cfg[plan].get("events"), list):
            sys.exit(f"{path}: config.{plan}.events must be a list")

    epoch = _nonneg(path, "checkpoint", doc, "epoch")
    if epoch > horizon:
        sys.exit(f"{path}: epoch {epoch} is past the config horizon {horizon}")
    import os
    import re
    m = re.fullmatch(r"CKPT_(\d{6}|\d{9})\.json", os.path.basename(path))
    if m and int(m.group(1)) != epoch:
        sys.exit(f"{path}: file name epoch {int(m.group(1))} != payload epoch {epoch}")

    st = doc["state"]
    if not isinstance(st, dict):
        sys.exit(f"{path}: state must be an object")
    if st.get("epoch") != epoch:
        sys.exit(f"{path}: state.epoch {st.get('epoch')!r} != checkpoint epoch {epoch}")
    health = st.get("health")
    if not isinstance(health, list) or len(health) != n_hosts:
        sys.exit(f"{path}: state.health must list all {n_hosts} hosts")
    for h, status in enumerate(health):
        if status not in HEALTH:
            sys.exit(f"{path}: state.health[{h}] unknown status {status!r}")
    vms = st.get("vms")
    if not isinstance(vms, list) or not vms:
        sys.exit(f"{path}: state.vms must be a non-empty list")
    for i, vm in enumerate(vms):
        where = f"state.vms[{i}]"
        if not isinstance(vm, dict):
            sys.exit(f"{path}: {where} must be an object")
        if not isinstance(vm.get("name"), str) or not vm["name"]:
            sys.exit(f"{path}: {where}.name must be a non-empty string")
        for field in ("local", "vcpus", "migrations", "prev_spin",
                      "prev_vcrd_high", "prev_online", "spin_delta",
                      "vcrd_high_delta", "online_delta", "attempts"):
            _nonneg(path, where, vm, field)
        host = _nonneg(path, where, vm, "host")
        if host >= n_hosts:
            sys.exit(f"{path}: {where} names host {host} of {n_hosts}")
        lm = vm.get("last_migration")
        if lm is not None and (not isinstance(lm, int) or lm < 0 or lm >= max(epoch, 1)):
            sys.exit(f"{path}: {where}.last_migration {lm!r} not in 0..{epoch}")
        for field in ("gave_up", "departed"):
            if not isinstance(vm.get(field), bool):
                sys.exit(f"{path}: {where}.{field} must be a boolean")
        if "final_row" not in vm:
            sys.exit(f"{path}: {where} missing 'final_row'")
        if vm["departed"] != (vm["final_row"] is not None):
            sys.exit(f"{path}: {where}: departed and final_row disagree")
    def check_chain(where, chain):
        if not isinstance(chain, dict):
            sys.exit(f"{path}: {where} must be an object")
        for field in ("vm", "to", "due", "attempts", "span"):
            _nonneg(path, where, chain, field)
        if chain["vm"] >= len(vms):
            sys.exit(f"{path}: {where} names vm {chain['vm']} of {len(vms)}")
        if chain["to"] >= n_hosts:
            sys.exit(f"{path}: {where} names host {chain['to']} of {n_hosts}")
        if chain["attempts"] < 1:
            sys.exit(f"{path}: {where}.attempts must be at least 1")

    pending = st.get("pending")
    if version >= 2:
        # v2: the ordered chain set, bounded by the move budget, with
        # pairwise-distinct VMs and destinations (each live chain holds
        # its endpoint caps).
        if not isinstance(pending, list):
            sys.exit(f"{path}: state.pending must be a list in version {version}")
        if len(pending) > max_moves:
            sys.exit(f"{path}: {len(pending)} pending chains exceed "
                     f"config.max_moves {max_moves}")
        for i, chain in enumerate(pending):
            check_chain(f"state.pending[{i}]", chain)
        for field, label in (("vm", "VM"), ("to", "destination")):
            vals = [c[field] for c in pending]
            if len(set(vals)) != len(vals):
                sys.exit(f"{path}: two pending chains share a {label}: {vals}")
    elif pending is not None:
        check_chain("state.pending", pending)
    for field in ("records", "aborts", "evacuations"):
        if not isinstance(st.get(field), list):
            sys.exit(f"{path}: state.{field} must be a list")
    for field in ("retries_committed", "retries_abandoned", "gave_up",
                  "arrivals", "departures", "arrivals_rejected",
                  "departures_skipped", "departed_finished", "next_span"):
        _nonneg(path, "state", st, field)

    prints = doc["hosts"]
    if not isinstance(prints, list) or len(prints) != n_hosts:
        sys.exit(f"{path}: hosts must list one fingerprint per host ({n_hosts})")
    for h, fp in enumerate(prints):
        if not isinstance(fp, int) or isinstance(fp, bool) or fp < 0:
            sys.exit(f"{path}: hosts[{h}] fingerprint must be a non-negative integer")
    _nonneg(path, "checkpoint", doc, "digest")
    print(f"ok: {path}: epoch {epoch}/{horizon}, {len(vms)} VMs x {n_hosts} hosts, "
          f"digest {doc['digest']:016x}")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    checker = check
    max_overlap = None
    args = iter(argv[1:])
    for arg in args:
        if arg == "--series":
            checker = check_series
        elif arg == "--spans":
            checker = check_spans
        elif arg == "--ckpt":
            checker = check_ckpt
        elif arg == "--max-overlap":
            try:
                max_overlap = int(next(args))
            except (StopIteration, ValueError):
                sys.exit("--max-overlap needs an integer")
        elif checker is check_spans:
            checker(arg, max_overlap)
        else:
            checker(arg)


if __name__ == "__main__":
    main(sys.argv)
